//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed flags: `--key value` pairs plus boolean `--switches`.
#[derive(Debug, Default, Clone)]
pub struct Flags {
    values: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses `argv` (after the subcommand). Flags needing values are
    /// listed in `valued`; everything else starting with `--` is a switch.
    /// `--name=value` attaches a value to any flag (including switches —
    /// the form `--profile=out.json` upgrades an optional switch).
    pub fn parse(argv: &[String], valued: &[&str]) -> Result<Self, String> {
        let mut f = Flags::default();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument '{a}'"));
            };
            if let Some((name, value)) = name.split_once('=') {
                f.values.insert(name.to_string(), value.to_string());
                f.switches.push(name.to_string());
                i += 1;
            } else if valued.contains(&name) {
                let v = argv
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                f.values.insert(name.to_string(), v.clone());
                i += 2;
            } else {
                f.switches.push(name.to_string());
                i += 1;
            }
        }
        Ok(f)
    }

    /// A string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// A required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("--{name} is required"))
    }

    /// A parsed numeric flag with default.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("--{name}: cannot parse '{s}'")),
        }
    }

    /// A comma-separated list flag.
    pub fn list(&self, name: &str, default: &[&str]) -> Vec<String> {
        match self.get(name) {
            None => default.iter().map(|s| s.to_string()).collect(),
            Some(s) => s.split(',').map(|x| x.trim().to_string()).collect(),
        }
    }

    /// Whether a boolean switch is present.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_values_and_switches() {
        let f = Flags::parse(
            &v(&["--nodes", "16", "--json", "--seed", "7"]),
            &["nodes", "seed"],
        )
        .unwrap();
        assert_eq!(f.get("nodes"), Some("16"));
        assert_eq!(f.num::<u64>("seed", 0).unwrap(), 7);
        assert!(f.has("json"));
        assert!(!f.has("quiet"));
    }

    #[test]
    fn equals_form_sets_both_switch_and_value() {
        let f = Flags::parse(&v(&["--profile=out.json", "--nodes=16"]), &["nodes"]).unwrap();
        assert!(f.has("profile"));
        assert_eq!(f.get("profile"), Some("out.json"));
        assert_eq!(f.num::<usize>("nodes", 0).unwrap(), 16);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Flags::parse(&v(&["--nodes"]), &["nodes"]).is_err());
    }

    #[test]
    fn positional_rejected() {
        assert!(Flags::parse(&v(&["oops"]), &[]).is_err());
    }

    #[test]
    fn list_and_defaults() {
        let f = Flags::parse(&v(&["--config", "wbi, cbl"]), &["config"]).unwrap();
        assert_eq!(f.list("config", &[]), vec!["wbi", "cbl"]);
        assert_eq!(f.list("nodes", &["8"]), vec!["8"]);
        assert_eq!(f.num::<usize>("tasks", 128).unwrap(), 128);
    }

    #[test]
    fn bad_number_reports_flag() {
        let f = Flags::parse(&v(&["--seed", "zzz"]), &["seed"]).unwrap();
        let err = f.num::<u64>("seed", 0).unwrap_err();
        assert!(err.contains("--seed"));
    }
}
