//! `ssmp fuzz` — seeded chaos fuzzing with shrinking reproducers.
//!
//! The harness sweeps seeded random fault plans (message duplication and
//! delay — the classes the protocols are guaranteed to mask) across
//! workload × config scenarios with the protocol sanitizer armed. Any
//! sanitizer violation, watchdog deadlock, or panic is a finding; the
//! first finding is then *shrunk* to a minimal deterministic reproducer:
//!
//! 1. the probabilistic plan is re-run and its per-message decision log
//!    extracted ([`ssmp_net::FaultPlan::log`]), turning randomness into
//!    an explicit fault list that replays exactly;
//! 2. ddmin over that list removes every fault entry not needed to
//!    re-trigger the same failure signature;
//! 3. node count and task count are halved while the signature persists.
//!
//! The result is written as a `ssmp-repro-v1` JSON file replayable with
//! `ssmp run --repro <file>`.

use std::sync::{Arc, Mutex};

use ssmp_engine::Json;
use ssmp_machine::{Machine, PlantedBug, RetryPolicy};
use ssmp_net::{FaultConfig, FaultOp, ForcedFault, MsgKind};
use ssmp_workload::Grain;

use crate::args::Flags;
use crate::commands::{
    adapt_geometry, check_workload, parse_config, parse_grain, sweep_workload, WorkloadShape,
};

/// The fault layer of a scenario: a seeded probabilistic plan while
/// searching; the explicit decision list once shrinking converts it.
#[derive(Debug, Clone)]
enum FaultSpec {
    Random {
        seed: u64,
        dup: f64,
        delay: f64,
        delay_cycles: u64,
    },
    Replay(Vec<ForcedFault>),
}

/// One self-contained fuzz case: everything needed to rebuild and re-run
/// the exact same simulation.
#[derive(Debug, Clone)]
struct Scenario {
    workload: String,
    config: String,
    nodes: usize,
    grain: Grain,
    tasks: usize,
    seed: u64,
    retry: bool,
    max_cycles: u64,
    fault: FaultSpec,
    planted: Option<PlantedBug>,
}

/// What one armed run produced.
struct Outcome {
    /// `None` on a clean run; otherwise the failure signature — the first
    /// violated invariant, `"deadlock"`, or `"panic"`.
    signature: Option<String>,
    /// Human-readable details of the failure.
    detail: String,
    /// The fault plan's decision log (`None` when the run panicked before
    /// a report could be assembled).
    fault_log: Option<Vec<ForcedFault>>,
}

fn build_config(sc: &Scenario) -> Result<ssmp_machine::MachineConfig, String> {
    let mut cfg = parse_config(&sc.config, sc.nodes)?;
    cfg.seed = sc.seed;
    cfg.max_cycles = sc.max_cycles;
    if sc.retry {
        cfg.retry = RetryPolicy::enabled();
    }
    cfg.fault = Some(match &sc.fault {
        FaultSpec::Random {
            seed,
            dup,
            delay,
            delay_cycles,
        } => {
            let mut fc = FaultConfig::uniform(*seed, 0.0, *dup, *delay);
            fc.delay_cycles = *delay_cycles;
            fc
        }
        FaultSpec::Replay(entries) => FaultConfig::replay(entries.clone()),
    });
    cfg.planted_bug = sc.planted;
    adapt_geometry(&mut cfg, &sc.workload, sc.nodes);
    Ok(cfg)
}

/// Runs a scenario with the sanitizer armed, converting every failure
/// mode — violation, deadlock, panic — into an [`Outcome`]. Violations
/// folded before a panic survive via the shared checker handle.
fn run_armed(sc: &Scenario) -> Result<Outcome, String> {
    let cfg = build_config(sc)?;
    let (wl, locks) = sweep_workload(
        &sc.workload,
        sc.nodes,
        sc.grain,
        sc.tasks,
        WorkloadShape::default(),
        sc.seed,
    );
    let m = Machine::builder(cfg)
        .workload(wl)
        .locks(locks)
        .check(true)
        .build()
        .map_err(|e| e.to_string())?;
    let checker = m.checker().expect("fuzz machines are always armed");
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || m.run()));
    Ok(match res {
        Ok(r) => {
            if let Some(v) = r.violations.first() {
                Outcome {
                    signature: Some(v.invariant.to_string()),
                    detail: v.render(),
                    fault_log: Some(r.fault_log),
                }
            } else if let Some(d) = &r.deadlock {
                Outcome {
                    signature: Some("deadlock".into()),
                    detail: d.render(),
                    fault_log: Some(r.fault_log),
                }
            } else {
                Outcome {
                    signature: None,
                    detail: String::new(),
                    fault_log: Some(r.fault_log),
                }
            }
        }
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            // A violation folded before the panic is the more precise
            // (and more shrink-stable) signature.
            let vs = checker.borrow();
            match vs.violations().first() {
                Some(v) => Outcome {
                    signature: Some(v.invariant.to_string()),
                    detail: v.render(),
                    fault_log: None,
                },
                None => Outcome {
                    signature: Some("panic".into()),
                    detail: msg,
                    fault_log: None,
                },
            }
        }
    })
}

/// Whether a candidate scenario still fails with the same signature.
fn fails_same(sc: &Scenario, sig: &str) -> bool {
    matches!(run_armed(sc), Ok(o) if o.signature.as_deref() == Some(sig))
}

/// Extracts the fault plan's decision log for a scenario. When the run
/// panics before a report exists, re-runs without the planted bug: the
/// plan's decisions are a pure function of the message sequence, which is
/// identical up to the trigger point.
fn extract_log(sc: &Scenario) -> Option<Vec<ForcedFault>> {
    if let Ok(o) = run_armed(sc) {
        if let Some(log) = o.fault_log {
            return Some(log);
        }
    }
    let clean = Scenario {
        planted: None,
        ..sc.clone()
    };
    run_armed(&clean).ok().and_then(|o| o.fault_log)
}

/// Classic ddmin over the forced-fault list: repeatedly try removing
/// complement chunks while the failure signature is preserved.
fn ddmin(
    sc: &Scenario,
    entries: Vec<ForcedFault>,
    sig: &str,
    runs: &mut usize,
) -> Vec<ForcedFault> {
    let mut cur = entries;
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut reduced = false;
        let mut i = 0;
        while i * chunk < cur.len() {
            let lo = i * chunk;
            let hi = (lo + chunk).min(cur.len());
            let cand: Vec<ForcedFault> = cur
                .iter()
                .enumerate()
                .filter(|(j, _)| *j < lo || *j >= hi)
                .map(|(_, e)| *e)
                .collect();
            let c = Scenario {
                fault: FaultSpec::Replay(cand.clone()),
                ..sc.clone()
            };
            *runs += 1;
            if fails_same(&c, sig) {
                cur = cand;
                n = 2.max(n - 1);
                reduced = true;
                break;
            }
            i += 1;
        }
        if !reduced {
            if n >= cur.len() {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    cur
}

/// Shrinks a failing scenario to a minimal deterministic reproducer:
/// nodes and tasks are halved while the signature persists, then the
/// probabilistic fault plan is converted to its explicit decision log and
/// ddmin removes every entry not needed to re-trigger the failure.
fn shrink(sc: &Scenario, sig: &str) -> (Scenario, usize) {
    let mut cur = sc.clone();
    let mut runs = 0usize;

    // 1. structural reduction: fewer nodes, fewer tasks
    loop {
        let mut reduced = false;
        if cur.nodes > 2 {
            let c = Scenario {
                nodes: cur.nodes / 2,
                tasks: (cur.tasks / 2).max(1),
                ..cur.clone()
            };
            runs += 1;
            if fails_same(&c, sig) {
                cur = c;
                reduced = true;
            }
        }
        if cur.tasks > 1 {
            let c = Scenario {
                tasks: cur.tasks / 2,
                ..cur.clone()
            };
            runs += 1;
            if fails_same(&c, sig) {
                cur = c;
                reduced = true;
            }
        }
        if !reduced {
            break;
        }
    }

    // 2. freeze the randomness: convert the probabilistic plan into its
    //    own decision log and verify the replay still fails identically
    if matches!(cur.fault, FaultSpec::Random { .. }) {
        if let Some(log) = extract_log(&cur) {
            runs += 1;
            let c = Scenario {
                fault: FaultSpec::Replay(log.clone()),
                ..cur.clone()
            };
            runs += 1;
            if fails_same(&c, sig) {
                cur = c;
            }
        }
    }

    // 3. ddmin the fault list down to the entries that matter
    if let FaultSpec::Replay(entries) = &cur.fault {
        let min = ddmin(&cur, entries.clone(), sig, &mut runs);
        cur.fault = FaultSpec::Replay(min);
    }

    (cur, runs)
}

// ----------------------------------------------------------------------
// Reproducer files (`ssmp-repro-v1`)
// ----------------------------------------------------------------------

fn kind_name(k: MsgKind) -> &'static str {
    match k {
        MsgKind::Cbl => "cbl",
        MsgKind::Ric => "ric",
        MsgKind::WbiData => "wbi-data",
        MsgKind::WbiLock => "wbi-lock",
        MsgKind::WbiFlag => "wbi-flag",
        MsgKind::Barrier => "barrier",
        MsgKind::Semaphore => "semaphore",
        MsgKind::Private => "private",
    }
}

fn parse_kind(s: &str) -> Result<MsgKind, String> {
    Ok(match s {
        "cbl" => MsgKind::Cbl,
        "ric" => MsgKind::Ric,
        "wbi-data" => MsgKind::WbiData,
        "wbi-lock" => MsgKind::WbiLock,
        "wbi-flag" => MsgKind::WbiFlag,
        "barrier" => MsgKind::Barrier,
        "semaphore" => MsgKind::Semaphore,
        "private" => MsgKind::Private,
        other => return Err(format!("repro: unknown message kind '{other}'")),
    })
}

fn grain_name(g: Grain) -> &'static str {
    match g {
        Grain::Fine => "fine",
        Grain::Medium => "medium",
        Grain::Coarse => "coarse",
    }
}

fn to_json(sc: &Scenario, signature: &str) -> Json {
    let faults = match &sc.fault {
        FaultSpec::Random {
            seed,
            dup,
            delay,
            delay_cycles,
        } => Json::Obj(vec![
            ("mode".into(), Json::Str("random".into())),
            ("seed".into(), Json::num(seed)),
            ("dup_prob".into(), Json::num(dup)),
            ("delay_prob".into(), Json::num(delay)),
            ("delay_cycles".into(), Json::num(delay_cycles)),
        ]),
        FaultSpec::Replay(entries) => Json::Obj(vec![
            ("mode".into(), Json::Str("replay".into())),
            (
                "entries".into(),
                Json::Arr(
                    entries
                        .iter()
                        .map(|e| {
                            let mut f = vec![
                                ("kind".into(), Json::Str(kind_name(e.kind).into())),
                                ("nth".into(), Json::num(e.nth)),
                            ];
                            match e.op {
                                FaultOp::Drop => f.push(("op".into(), Json::Str("drop".into()))),
                                FaultOp::Dup => f.push(("op".into(), Json::Str("dup".into()))),
                                FaultOp::Delay(c) => {
                                    f.push(("op".into(), Json::Str("delay".into())));
                                    f.push(("delay".into(), Json::num(c)));
                                }
                            }
                            Json::Obj(f)
                        })
                        .collect(),
                ),
            ),
        ]),
    };
    let mut fields = vec![
        ("schema".into(), Json::Str("ssmp-repro-v1".into())),
        ("workload".into(), Json::Str(sc.workload.clone())),
        ("config".into(), Json::Str(sc.config.clone())),
        ("nodes".into(), Json::num(sc.nodes)),
        ("grain".into(), Json::Str(grain_name(sc.grain).into())),
        ("tasks".into(), Json::num(sc.tasks)),
        ("seed".into(), Json::num(sc.seed)),
        ("retry".into(), Json::Bool(sc.retry)),
        ("max_cycles".into(), Json::num(sc.max_cycles)),
        ("signature".into(), Json::Str(signature.into())),
        ("faults".into(), faults),
    ];
    if sc.planted == Some(PlantedBug::CblDedupSkip) {
        fields.push(("planted_bug".into(), Json::Str("cbl-dedup".into())));
    }
    Json::Obj(fields)
}

fn str_field<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("repro: missing string field '{key}'"))
}

fn num_field(j: &Json, key: &str) -> Result<u64, String> {
    j.get(key)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("repro: missing numeric field '{key}'"))
}

fn from_json(j: &Json) -> Result<(Scenario, String), String> {
    if str_field(j, "schema")? != "ssmp-repro-v1" {
        return Err(format!(
            "repro: unsupported schema '{}'",
            str_field(j, "schema")?
        ));
    }
    let fj = j.get("faults").ok_or("repro: missing 'faults'")?;
    let fault = match str_field(fj, "mode")? {
        "random" => FaultSpec::Random {
            seed: num_field(fj, "seed")?,
            dup: fj.get("dup_prob").and_then(|v| v.as_f64()).unwrap_or(0.0),
            delay: fj.get("delay_prob").and_then(|v| v.as_f64()).unwrap_or(0.0),
            delay_cycles: num_field(fj, "delay_cycles")?,
        },
        "replay" => {
            let entries = fj
                .get("entries")
                .and_then(|v| v.as_array())
                .ok_or("repro: replay mode needs 'entries'")?;
            FaultSpec::Replay(
                entries
                    .iter()
                    .map(|e| {
                        let kind = parse_kind(str_field(e, "kind")?)?;
                        let nth = num_field(e, "nth")?;
                        let op = match str_field(e, "op")? {
                            "drop" => FaultOp::Drop,
                            "dup" => FaultOp::Dup,
                            "delay" => FaultOp::Delay(num_field(e, "delay")?),
                            other => return Err(format!("repro: unknown fault op '{other}'")),
                        };
                        Ok(ForcedFault { kind, nth, op })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            )
        }
        other => return Err(format!("repro: unknown fault mode '{other}'")),
    };
    let planted = match j.get("planted_bug").and_then(|v| v.as_str()) {
        None => None,
        Some("cbl-dedup") => Some(PlantedBug::CblDedupSkip),
        Some(other) => return Err(format!("repro: unknown planted bug '{other}'")),
    };
    let sc = Scenario {
        workload: str_field(j, "workload")?.to_string(),
        config: str_field(j, "config")?.to_string(),
        nodes: num_field(j, "nodes")? as usize,
        grain: parse_grain(str_field(j, "grain")?)?,
        tasks: num_field(j, "tasks")? as usize,
        seed: num_field(j, "seed")?,
        retry: matches!(j.get("retry"), Some(Json::Bool(true))),
        max_cycles: num_field(j, "max_cycles")?,
        fault,
        planted,
    };
    Ok((sc, str_field(j, "signature")?.to_string()))
}

/// `ssmp run --repro <file>`: rebuilds the recorded scenario, runs it with
/// the sanitizer armed, and succeeds iff the recorded failure signature
/// re-triggers.
pub fn run_repro(path: &str, json: bool) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("--repro {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("--repro {path}: {e}"))?;
    let (sc, expected) = from_json(&doc)?;
    let quiet = QuietPanics::new();
    let o = run_armed(&sc)?;
    drop(quiet);
    let got = o.signature.clone().unwrap_or_else(|| "clean".into());
    if json {
        let doc = Json::Obj(vec![
            ("expected".into(), Json::Str(expected.clone())),
            ("observed".into(), Json::Str(got.clone())),
            ("reproduced".into(), Json::Bool(got == expected)),
        ]);
        println!("{}", doc.render());
    } else if !o.detail.is_empty() {
        print!("{}", o.detail);
        if !o.detail.ends_with('\n') {
            println!();
        }
    }
    if got == expected {
        if !json {
            println!("reproduced: {expected}");
        }
        Ok(())
    } else {
        Err(format!(
            "repro did not re-trigger: expected signature '{expected}', observed '{got}'"
        ))
    }
}

/// Silences the default panic hook for the duration of a value's lifetime
/// (shrinking deliberately runs panicking scenarios dozens of times).
struct QuietPanics;

impl QuietPanics {
    fn new() -> Self {
        std::panic::set_hook(Box::new(|_| {}));
        QuietPanics
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        let _ = std::panic::take_hook();
    }
}

// ----------------------------------------------------------------------
// The fuzz driver
// ----------------------------------------------------------------------

/// `ssmp fuzz`: sweep seeded chaos scenarios in parallel; shrink and
/// persist the first failure. Exits nonzero when anything failed.
pub fn fuzz(f: &Flags) -> Result<(), String> {
    use ssmp_bench::exp::{default_jobs, Experiment, PointOutput, RunnerOpts};

    let quick = f.has("quick") || std::env::var_os("SSMP_QUICK").is_some();
    let jobs = f.num::<usize>("jobs", default_jobs())?;
    let nodes = f.num::<usize>("nodes", 4)?;
    let seeds = f.num::<u64>("seeds", if quick { 2 } else { 6 })?;
    let base_seed = f.num::<u64>("seed", 0xF0CC)?;
    let dup = f.num::<f64>("dup-prob", 0.05)?;
    let delay = f.num::<f64>("delay-prob", 0.10)?;
    let delay_cycles = f.num::<u64>("delay-cycles", 200)?;
    let grain = parse_grain(f.get("grain").unwrap_or("fine"))?;
    let tasks = f.num::<usize>("tasks", 2 * nodes)?;
    let retry = f.has("retry");
    let max_cycles = f.num::<u64>("cycle-budget", 5_000_000)?;
    let planted = match f.get("planted-bug") {
        None => None,
        Some("cbl-dedup") => Some(PlantedBug::CblDedupSkip),
        Some(other) => return Err(format!("unknown planted bug '{other}' (try cbl-dedup)")),
    };
    let workloads = f.list(
        "workload",
        if quick {
            &["work-queue", "sync"]
        } else {
            &["work-queue", "sync", "solver", "hotspot"]
        },
    );
    let configs = f.list("config", &["cbl", "sc-cbl", "bc-cbl"]);
    for w in &workloads {
        check_workload(w)?;
    }
    for c in &configs {
        parse_config(c, nodes.max(2))?;
    }

    // the scenario matrix, in deterministic order
    let mut scenarios: Vec<(String, Scenario)> = Vec::new();
    for w in &workloads {
        for c in &configs {
            for s in 0..seeds {
                let seed = base_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(s);
                let sc = Scenario {
                    workload: w.clone(),
                    config: c.clone(),
                    nodes,
                    grain,
                    tasks,
                    seed,
                    retry,
                    max_cycles,
                    fault: FaultSpec::Random {
                        seed: seed ^ 0xFA17,
                        dup,
                        delay,
                        delay_cycles,
                    },
                    planted,
                };
                scenarios.push((format!("{w}/{c}/seed={s}"), sc));
            }
        }
    }

    let quiet = QuietPanics::new();
    let findings: Arc<Mutex<Vec<(usize, String, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut exp = Experiment::new("fuzz");
    for (idx, (label, sc)) in scenarios.iter().enumerate() {
        let sc = sc.clone();
        let label = label.clone();
        let findings = Arc::clone(&findings);
        exp.point(label.clone(), move |_| {
            let o = run_armed(&sc).unwrap_or_else(|e| Outcome {
                signature: Some("setup-error".into()),
                detail: e,
                fault_log: None,
            });
            match o.signature {
                Some(sig) => {
                    findings.lock().unwrap().push((idx, label.clone(), sig));
                    PointOutput::values(vec![("failed".into(), 1.0)])
                }
                None => PointOutput::values(vec![("failed".into(), 0.0)]),
            }
        });
    }
    let opts = RunnerOpts::new()
        .jobs(jobs)
        .progress(std::env::var_os("SSMP_NO_PROGRESS").is_none());
    exp.run(&opts);

    let mut found = findings.lock().unwrap().clone();
    found.sort();
    println!(
        "fuzz: {} scenarios, {} failing",
        scenarios.len(),
        found.len()
    );
    if found.is_empty() {
        drop(quiet);
        return Ok(());
    }
    for (_, label, sig) in &found {
        println!("  FAIL {label}  [{sig}]");
    }

    // shrink the first (deterministically ordered) finding
    let (idx, label, sig) = found.first().cloned().expect("non-empty");
    println!("shrinking {label} [{sig}] ...");
    let (min, runs) = shrink(&scenarios[idx].1, &sig);
    drop(quiet);
    let entries = match &min.fault {
        FaultSpec::Replay(e) => e.len(),
        FaultSpec::Random { .. } => usize::MAX,
    };
    match entries {
        usize::MAX => println!(
            "shrunk to nodes={} tasks={} (fault plan stayed probabilistic) in {runs} runs",
            min.nodes, min.tasks
        ),
        n => println!(
            "shrunk to nodes={} tasks={} with {n} fault entr{} in {runs} runs",
            min.nodes,
            min.tasks,
            if n == 1 { "y" } else { "ies" }
        ),
    }

    let out = f.get("out").unwrap_or("repro.json");
    std::fs::write(out, to_json(&min, &sig).render() + "\n")
        .map_err(|e| format!("--out {out}: {e}"))?;
    println!("reproducer written to {out}  (replay: ssmp run --repro {out})");
    // a finding is a failed fuzz run, but not a usage error: exit like a
    // failed sweep instead of bubbling through the usage-printing path
    eprintln!(
        "fuzz: {} of {} scenarios failed; first signature '{sig}'",
        found.len(),
        scenarios.len()
    );
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_scenario() -> Scenario {
        Scenario {
            workload: "sync".into(),
            config: "bc-cbl".into(),
            nodes: 4,
            grain: Grain::Fine,
            tasks: 8,
            seed: 0xC11,
            retry: false,
            max_cycles: 5_000_000,
            fault: FaultSpec::Random {
                seed: 7,
                dup: 0.05,
                delay: 0.10,
                delay_cycles: 200,
            },
            planted: None,
        }
    }

    #[test]
    fn clean_scenario_has_no_signature() {
        let o = run_armed(&base_scenario()).unwrap();
        assert_eq!(o.signature, None, "{}", o.detail);
        assert!(o.fault_log.is_some());
    }

    #[test]
    fn repro_roundtrips_through_json() {
        let mut sc = base_scenario();
        sc.fault = FaultSpec::Replay(vec![
            ForcedFault {
                kind: MsgKind::Cbl,
                nth: 3,
                op: FaultOp::Dup,
            },
            ForcedFault {
                kind: MsgKind::Ric,
                nth: 0,
                op: FaultOp::Delay(99),
            },
        ]);
        sc.planted = Some(PlantedBug::CblDedupSkip);
        let doc = to_json(&sc, "wire.exactly-once");
        let (back, sig) = from_json(&Json::parse(&doc.render()).unwrap()).unwrap();
        assert_eq!(sig, "wire.exactly-once");
        assert_eq!(format!("{back:?}"), format!("{sc:?}"));
    }

    /// The seeded known-bug regression: with the planted CBL dedup bug, a
    /// dup-faulted scenario must fail with a stable signature, and the
    /// shrinker must reduce the fault plan to at most 3 explicit entries
    /// whose replay deterministically re-triggers the same signature.
    #[test]
    fn planted_bug_shrinks_to_minimal_replay() {
        let _quiet = QuietPanics::new();
        let mut sc = base_scenario();
        sc.planted = Some(PlantedBug::CblDedupSkip);
        sc.fault = FaultSpec::Random {
            seed: 7,
            dup: 0.10,
            delay: 0.0,
            delay_cycles: 200,
        };
        let o = run_armed(&sc).unwrap();
        let sig = o.signature.expect("planted bug must trigger a failure");
        assert_eq!(sig, "wire.exactly-once");

        let (min, _runs) = shrink(&sc, &sig);
        let FaultSpec::Replay(entries) = &min.fault else {
            panic!("shrinker must freeze the fault plan into a replay list");
        };
        assert!(
            entries.len() <= 3,
            "shrinker left {} fault entries: {entries:?}",
            entries.len()
        );
        assert!(entries.iter().any(|e| e.op == FaultOp::Dup));
        // the minimal reproducer re-triggers deterministically
        assert!(fails_same(&min, &sig));
        assert!(fails_same(&min, &sig), "reproducer must be deterministic");
    }
}
