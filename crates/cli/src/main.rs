//! `ssmp` — command-line driver for the machine simulator.
//!
//! ```text
//! ssmp run   --workload work-queue --config bc-cbl --nodes 16 [--grain medium]
//!            [--tasks 128] [--seed N] [--json]
//! ssmp sweep --workload sync --config wbi,cbl --nodes 4,8,16,32
//! ssmp trace capture --workload sync --nodes 8 --out trace.json
//! ssmp trace replay  --in trace.json --config bc-cbl [--json]
//! ```
//!
//! Exit code 2 signals a usage error (with help on stderr).

use std::process::ExitCode;

mod args;
mod commands;
mod fuzz;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::from(2)
        }
    }
}
