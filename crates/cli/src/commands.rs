//! Subcommand implementations.

use ssmp_machine::{Machine, MachineConfig, Report, Workload};
use ssmp_workload::{
    Grain, Hotspot, HotspotParams, LinearSolver, SolverParams, Sor, SorParams, SyncModel,
    SyncParams, Trace, WorkQueue, WorkQueueParams,
};

use crate::args::Flags;

/// CLI usage text.
pub const USAGE: &str = "\
usage:
  ssmp run   --workload <wl> (--protocol <p> | --config <cfg>) [--nodes N]
             [--grain g] [--tasks T] [--seed S]
             [--topology omega|bus|ideal] [--queue wheel|heap] [--json]
  ssmp sweep [--points <spec>] [--workload <wl>
             (--protocol <p>[,p...] | --config <cfg>[,cfg...])
             [--nodes 4,8,16,...]] [--jobs N] [--seed S] [--quick]
             [--grain g] [--tasks T] [--json] [--out <file>]
  ssmp trace capture --workload <wl> [--nodes N] [--grain g] [--tasks T]
             [--seed S] --out <file>
  ssmp trace replay  --in <file> --config <cfg> [--json]
  ssmp trace stats   --in <file> [--validate] [--json]
  ssmp analyze --in <trace.jsonl> [--top K] [--json] [--out <file>]
  ssmp spans   --in <trace.jsonl> [--top K] [--json] [--out <file>]
  ssmp diff  <a> <b> [--top K] [--json] [--out <file>] [--gate]
             [--tolerance FRAC]
  ssmp program --file <prog.sasm> --config <cfg> [--sems c0,c1,...] [--json]
  ssmp fuzz  [--quick] [--jobs N] [--seeds K] [--seed S] [--out <repro.json>]
             [--workload wl[,wl...]] [--config cfg[,cfg...]] [--nodes N]
             [--dup-prob p] [--delay-prob p] [--delay-cycles c] [--retry]
             [--grain g] [--tasks T] [--cycle-budget c]
             [--planted-bug cbl-dedup]
  ssmp run   --repro <repro.json> [--json]

sweep runs its points (config × nodes × scheme) in parallel on --jobs
worker threads; the emitted artifact is byte-identical for any --jobs.
  --points <wl>:<cfg,cfg>:<n,n>   explicit grid, e.g. sync:wbi,cbl:4,8,16
  --points table3[:<n,n>]         the Table 3 scenario points
  --out <file>                    write the full JSON artifact (points
                                  incl. failures + per-point seeds)
  --diff-against <artifact>       diff this sweep against a committed
                                  ssmp-sweep-v1 baseline (the perfguard
                                  policies gate it; violations exit 1)

differential observability:
  ssmp diff takes any two artifacts of the same kind — two --json run
  reports, two ssmp-sweep-v1 sweeps (point-aligned by scenario label),
  two ssmp-profile-v1 profiles, or two ssmp-span-v1 span sets — and
  explains where the cycles, messages, and contention moved: exact
  counter deltas (the simulator is deterministic, so every nonzero
  delta is real), stall-attribution movement tables that preserve the
  exact-sum invariant on both sides, per-line heatmap deltas with
  false sharing that appears/disappears, per-lock latency/fairness/
  handoff shifts, span-segment tiling shifts with percentile-by-
  percentile comparison, and a ranked top-movers summary. --json /
  --out emit the deterministic ssmp-diff-v1 document; --gate exits 1
  on policy violations (sweeps gate by perfguard key class: exact keys
  must match, speedup sags past --tolerance fail, wall-clock keys are
  informational; other kinds gate on strict identity). Either path may
  be '-' for stdin.

simulator internals (run, sweep, trace replay, program):
  [--queue wheel|heap]   event-queue implementation: the timing-wheel
  scheduler (default) or the binary-heap baseline. Reports and sweep
  artifacts are byte-identical either way; the flag exists for perf
  comparison and as an escape hatch.

fault injection / robustness (run, sweep, trace replay, program):
  [--fault-seed S] [--drop-prob p] [--dup-prob p] [--delay-prob p]
  [--delay-cycles c] [--retry] [--retry-timeout c] [--retry-max n]
  [--cycle-budget c]

observability (run, trace replay, program; sweep takes --metrics-interval):
  [--trace <file>] [--trace-format jsonl|perfetto] [--trace-filter f1,f2,...]
  [--trace-ring N] [--metrics-interval N]
  trace filter tokens: families wbi|ric|cbl|bar|sem|priv|node|net and/or
  kinds issue|net-inject|net-deliver|retry|fault|stall-begin|stall-end|
  lock-acquire|lock-release|flush|access|queue|done

profiling (run, sweep, trace replay, program):
  [--profile[=<out.json>]]  fold events live into the ssmp-profile-v1
  contention/stall profile: per-line heatmaps + false-sharing detector,
  per-lock latency/queue-depth/fairness, per-node stall attribution.
  Printed with the report (text) or embedded as \"profile\" (--json /
  sweep artifacts); --profile=<file> also writes the JSON document.
  'ssmp analyze' folds a --trace jsonl offline into the identical JSON.

span tracing (run, sweep, trace replay, program):
  [--spans[=<out.json>]]  stitch the event stream live into per-
  transaction spans (ssmp-span-v1): exact end-to-end latency with an
  exact-sum segment breakdown (issue/wbuf/net/mem/queue/complete/local),
  per-type latency quantiles up to p999, the critical path, and
  stitching-health counters. Printed with the report (text) or embedded
  as \"spans\" (--json / sweep artifacts); --spans=<file> also writes
  the JSON document. 'ssmp spans' stitches a --trace jsonl offline into
  the identical JSON; 'ssmp trace stats' reports stitching health.

sanitizing / fuzzing:
  [--check]   (run, sweep, trace replay, program) arm the live protocol
  sanitizer: every trace event is folded into a reference oracle (SWMR,
  exactly-once wire delivery, CBL FIFO + mutual exclusion, write-buffer
  drain order, value provenance) and violations are reported with the
  last trace events attached. Observation-only: the report is otherwise
  byte-identical to an unarmed run.
  'ssmp fuzz' sweeps seeded random fault plans across workload/config
  scenarios with the sanitizer armed; any violation, deadlock, or panic
  is shrunk (ddmin over the fault decision log, then nodes/tasks) to a
  minimal deterministic reproducer written to --out (default repro.json)
  and replayable with 'ssmp run --repro <file>'. --planted-bug arms a
  deliberate protocol bug (self-test of the pipeline).

workloads: work-queue | sync | solver | fft | hotspot | sor
  hotspot: [--hot h] [--hot-lock]   route hot refs through lock 0
  sor:     [--packed]               false-sharing boundary layout
protocols: ric | wbi | mesi | dragon
  --protocol picks the shared-data coherence backend by name (run, sweep,
  program, trace replay): the paper's reader-initiated scheme, the WBI
  write-invalidate directory, snooping MESI, or the Dragon write-update
  protocol. Each uses TTS locks and the software barrier, so the data
  protocols compare like-for-like.
configs:   wbi | wbi-backoff | cbl | sc-cbl | bc-cbl | ric | mesi | dragon
  --config is the older spelling (deprecated in favour of --protocol for
  the four coherence schemes); it keeps working, and remains the only way
  to pick the lock-centric presets (wbi-backoff, cbl, sc-cbl, bc-cbl).
grains:    fine | medium | coarse";

const VALUED: &[&str] = &[
    "workload",
    "config",
    "protocol",
    "nodes",
    "grain",
    "tasks",
    "seed",
    "out",
    "in",
    "topology",
    "hot",
    "file",
    "sems",
    "points",
    "jobs",
    "fault-seed",
    "drop-prob",
    "dup-prob",
    "delay-prob",
    "delay-cycles",
    "retry-timeout",
    "retry-max",
    "cycle-budget",
    "trace",
    "trace-format",
    "trace-filter",
    "trace-ring",
    "metrics-interval",
    "top",
    "queue",
    "repro",
    "seeds",
    "planted-bug",
    "tolerance",
    "diff-against",
];

/// Splits an argv into positional operands and flag tokens, so commands
/// like `ssmp diff <a> <b> --json` can take paths without `--in`-style
/// spelling. Valued flags keep their value token even when it doesn't
/// start with `--`.
fn split_positionals(argv: &[String]) -> (Vec<String>, Vec<String>) {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < argv.len() {
        let a = &argv[i];
        match a.strip_prefix("--") {
            // anything not `--`-prefixed is an operand (including the
            // stdin spelling '-')
            None => pos.push(a.clone()),
            Some(name) => {
                flags.push(a.clone());
                if !name.contains('=') && VALUED.contains(&name) {
                    if let Some(v) = argv.get(i + 1) {
                        flags.push(v.clone());
                        i += 1;
                    }
                }
            }
        }
        i += 1;
    }
    (pos, flags)
}

/// Dispatches a full argv (without the binary name).
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    match argv.first().map(|s| s.as_str()) {
        Some("run") => run(&Flags::parse(&argv[1..], VALUED)?),
        Some("sweep") => sweep(&Flags::parse(&argv[1..], VALUED)?),
        Some("diff") => {
            let (pos, flag_args) = split_positionals(&argv[1..]);
            diff(&pos, &Flags::parse(&flag_args, VALUED)?)
        }
        Some("trace") => match argv.get(1).map(|s| s.as_str()) {
            Some("capture") => trace_capture(&Flags::parse(&argv[2..], VALUED)?),
            Some("replay") => trace_replay(&Flags::parse(&argv[2..], VALUED)?),
            Some("stats") => trace_stats(&Flags::parse(&argv[2..], VALUED)?),
            _ => Err("trace needs 'capture', 'replay', or 'stats'".into()),
        },
        Some("analyze") => analyze(&Flags::parse(&argv[1..], VALUED)?),
        Some("spans") => spans(&Flags::parse(&argv[1..], VALUED)?),
        Some("program") => program(&Flags::parse(&argv[1..], VALUED)?),
        Some("fuzz") => crate::fuzz::fuzz(&Flags::parse(&argv[1..], VALUED)?),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("no command given".into()),
    }
}

pub(crate) fn parse_config(name: &str, nodes: usize) -> Result<MachineConfig, String> {
    if nodes == 0 || !nodes.is_power_of_two() {
        return Err(format!(
            "--nodes must be a power of two for the omega network, got {nodes}"
        ));
    }
    Ok(match name {
        "wbi" => MachineConfig::wbi(nodes),
        "wbi-backoff" => MachineConfig::wbi_backoff(nodes),
        "cbl" => MachineConfig::cbl(nodes),
        "sc-cbl" => MachineConfig::sc_cbl(nodes),
        "bc-cbl" => MachineConfig::bc_cbl(nodes),
        // coherence-protocol presets (the `--protocol` names; accepted as
        // configs too so sweep artifacts can mix them with lock presets)
        "ric" => MachineConfig::ric(nodes),
        "mesi" => MachineConfig::mesi(nodes),
        "dragon" => MachineConfig::dragon(nodes),
        other => return Err(format!("unknown config '{other}'")),
    })
}

/// The `--protocol` names: one per coherence backend.
pub(crate) const PROTOCOLS: &[&str] = &["ric", "wbi", "mesi", "dragon"];

/// Rejects a `--protocol` value that is not a coherence backend name
/// (unlike `--config`, which also accepts the lock-centric presets).
fn check_protocol(name: &str) -> Result<(), String> {
    if PROTOCOLS.contains(&name) {
        Ok(())
    } else {
        Err(format!("unknown protocol '{name}' (ric|wbi|mesi|dragon)"))
    }
}

/// Warns (once per value, on stderr) when the deprecated `--config`
/// spelling names a coherence backend that `--protocol` selects; the
/// lock-centric presets have no `--protocol` spelling, so they stay
/// silent.
pub(crate) fn warn_config_deprecated(value: &str) {
    if PROTOCOLS.contains(&value) {
        eprintln!(
            "warning: --config {value} is deprecated; use --protocol {value} \
             (--config remains for the lock-centric presets)"
        );
    }
}

/// Resolves the configuration name from `--protocol` (preferred) or the
/// older `--config` spelling; the conflict table rejects giving both.
fn config_selector(f: &Flags) -> Result<&str, String> {
    match f.get("protocol") {
        Some(p) => {
            check_protocol(p)?;
            Ok(p)
        }
        None => {
            let c = f.require("config")?;
            warn_config_deprecated(c);
            Ok(c)
        }
    }
}

pub(crate) fn parse_grain(name: &str) -> Result<Grain, String> {
    Ok(match name {
        "fine" => Grain::Fine,
        "medium" => Grain::Medium,
        "coarse" => Grain::Coarse,
        other => return Err(format!("unknown grain '{other}'")),
    })
}

/// Flag pairs that cannot be combined, with the reason — one table
/// instead of ad-hoc per-flag checks scattered through the parsers.
/// Checked for every subcommand that takes simulator flags.
const CONFLICTS: &[(&str, &str, &str)] = &[
    (
        "profile",
        "trace-filter",
        "--profile needs the full event stream (the filter prunes events before \
         sinks and would skew attribution); drop --trace-filter",
    ),
    (
        "spans",
        "trace-filter",
        "--spans stitches spans out of the full event stream (the filter would \
         orphan begins/ends and drop wire links); drop --trace-filter",
    ),
    (
        "check",
        "trace-filter",
        "--check folds every event into the sanitizer's oracles (the filter would \
         blind them and fake violations); drop --trace-filter",
    ),
    (
        "protocol",
        "config",
        "--protocol is the one coherence-selection surface and --config is its \
         older spelling; give either, not both",
    ),
    (
        "repro",
        "workload",
        "--repro replays the scenario recorded in the file; drop --workload",
    ),
    (
        "repro",
        "config",
        "--repro replays the scenario recorded in the file; drop --config",
    ),
    (
        "repro",
        "fault-seed",
        "--repro carries its own fault plan; drop --fault-seed",
    ),
    (
        "repro",
        "planted-bug",
        "--repro records whether a bug was planted; drop --planted-bug",
    ),
];

/// Whether a flag was given in any form (`--name`, `--name value`, or
/// `--name=value`).
fn given(f: &Flags, name: &str) -> bool {
    f.has(name) || f.get(name).is_some()
}

/// Rejects any combination listed in [`CONFLICTS`].
fn check_conflicts(f: &Flags) -> Result<(), String> {
    for (a, b, why) in CONFLICTS {
        if given(f, a) && given(f, b) {
            return Err(format!("--{a} conflicts with --{b}: {why}"));
        }
    }
    Ok(())
}

/// The simulation flags shared by `run`, `sweep`, `program`, and
/// `trace replay`: interconnect topology, fault injection, the retry
/// layer, the cycle-budget watchdog, interval metrics sampling, the
/// profiler, and the protocol sanitizer.
///
/// Parsed once per invocation, then applied (with validation) to every
/// machine configuration the subcommand builds — `sweep` stamps the
/// same `SimFlags` onto each of its points.
#[derive(Debug, Clone, Default)]
struct SimFlags {
    topology: Option<ssmp_net::Topology>,
    queue: Option<ssmp_machine::QueueKind>,
    fault: Option<ssmp_net::FaultConfig>,
    retry: Option<ssmp_machine::RetryPolicy>,
    max_cycles: Option<u64>,
    metrics_interval: Option<u64>,
    profile: bool,
    spans: bool,
    check: bool,
}

impl SimFlags {
    fn parse(f: &Flags) -> Result<Self, String> {
        check_conflicts(f)?;
        let mut s = SimFlags {
            profile: f.has("profile"),
            spans: f.has("spans"),
            check: f.has("check"),
            ..SimFlags::default()
        };
        if let Some(t) = f.get("topology") {
            s.topology = Some(match t {
                "omega" => ssmp_net::Topology::Omega,
                "bus" => ssmp_net::Topology::Bus,
                "ideal" => ssmp_net::Topology::Ideal,
                other => return Err(format!("unknown topology '{other}'")),
            });
        }
        if let Some(q) = f.get("queue") {
            s.queue = Some(match q {
                "wheel" => ssmp_machine::QueueKind::Wheel,
                "heap" => ssmp_machine::QueueKind::Heap,
                other => return Err(format!("unknown queue '{other}' (expected wheel or heap)")),
            });
        }
        let drop_prob = f.num::<f64>("drop-prob", 0.0)?;
        let dup_prob = f.num::<f64>("dup-prob", 0.0)?;
        let delay_prob = f.num::<f64>("delay-prob", 0.0)?;
        if f.get("fault-seed").is_some() || drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0 {
            let seed = f.num::<u64>("fault-seed", 0xFA)?;
            let mut fc = ssmp_net::FaultConfig::uniform(seed, drop_prob, dup_prob, delay_prob);
            fc.delay_cycles = f.num::<u64>("delay-cycles", fc.delay_cycles)?;
            s.fault = Some(fc);
        }
        if f.has("retry") || f.get("retry-timeout").is_some() || f.get("retry-max").is_some() {
            let mut rp = ssmp_machine::RetryPolicy::enabled();
            rp.timeout = f.num("retry-timeout", rp.timeout)?;
            rp.max_attempts = f.num("retry-max", rp.max_attempts)?;
            s.retry = Some(rp);
        }
        if f.get("cycle-budget").is_some() {
            s.max_cycles = Some(f.num::<u64>("cycle-budget", 0)?);
        }
        if f.get("metrics-interval").is_some() {
            let iv = f.num::<u64>("metrics-interval", 1000)?;
            if iv == 0 {
                return Err("--metrics-interval must be >= 1".into());
            }
            s.metrics_interval = Some(iv);
        }
        Ok(s)
    }

    /// Stamps the flags onto `cfg` and validates the result.
    fn apply(&self, cfg: &mut MachineConfig) -> Result<(), String> {
        if let Some(t) = self.topology {
            cfg.topology = t;
        }
        if let Some(q) = self.queue {
            cfg.queue = q;
        }
        if let Some(fc) = &self.fault {
            cfg.fault = Some(fc.clone());
        }
        if let Some(rp) = self.retry {
            cfg.retry = rp;
        }
        if let Some(mc) = self.max_cycles {
            cfg.max_cycles = mc;
        }
        if let Some(iv) = self.metrics_interval {
            cfg.metrics_interval = Some(iv);
        }
        cfg.validate().map_err(|e| e.to_string())
    }
}

/// Builds the event tracer from the `--trace*` flags; off when `--trace`
/// is absent.
fn build_tracer(f: &Flags) -> Result<ssmp_engine::Tracer, String> {
    use ssmp_engine::{JsonlSink, PerfettoSink, TraceFilter, Tracer};
    let Some(path) = f.get("trace") else {
        return Ok(Tracer::off());
    };
    let filter = match f.get("trace-filter") {
        Some(spec) => TraceFilter::parse(spec)?,
        None => TraceFilter::all(),
    };
    let ring = f.num::<usize>("trace-ring", 256)?;
    let mut tracer = Tracer::new(filter).with_ring(ring);
    let file = std::fs::File::create(path).map_err(|e| format!("--trace {path}: {e}"))?;
    let w = std::io::BufWriter::new(file);
    match f.get("trace-format").unwrap_or("jsonl") {
        "jsonl" => tracer.add_sink(JsonlSink::new(w)),
        "perfetto" => tracer.add_sink(PerfettoSink::new(w)),
        other => {
            return Err(format!(
                "unknown trace format '{other}' (expected jsonl or perfetto)"
            ))
        }
    }
    Ok(tracer)
}

/// Builds the named workload; returns it plus the machine lock count.
const WORKLOADS: &[&str] = &["work-queue", "sync", "solver", "fft", "hotspot", "sor"];

pub(crate) fn check_workload(name: &str) -> Result<(), String> {
    if WORKLOADS.contains(&name) {
        Ok(())
    } else {
        Err(format!("unknown workload '{name}'"))
    }
}

fn build_workload(
    name: &str,
    nodes: usize,
    f: &Flags,
) -> Result<(Box<dyn Workload>, usize), String> {
    check_workload(name)?;
    let grain = parse_grain(f.get("grain").unwrap_or("medium"))?;
    let tasks = f.num::<usize>("tasks", 8 * nodes)?;
    let seed = f.num::<u64>("seed", 0xC11)?;
    let hot = f.num::<f64>("hot", 0.2)?;
    let shape = WorkloadShape {
        hot,
        hot_lock: f.has("hot-lock"),
        packed: f.has("packed"),
    };
    Ok(sweep_workload(name, nodes, grain, tasks, shape, seed))
}

pub(crate) fn adapt_geometry(cfg: &mut MachineConfig, workload: &str, nodes: usize) {
    // SOR owns one boundary block per chunk (padded layout upper bound)
    if workload == "sor" {
        cfg.geometry =
            ssmp_core::addr::Geometry::new(nodes, 4, nodes.max(cfg.geometry.shared_blocks));
    }
    // the solver and FFT size the shared region themselves
    if workload == "solver" {
        let p = SolverParams::paper(nodes, ssmp_workload::Allocation::Packed, 1);
        cfg.geometry = ssmp_core::addr::Geometry::new(
            nodes,
            4,
            p.shared_blocks().max(cfg.geometry.shared_blocks),
        );
    }
    if workload == "fft" {
        let p = ssmp_workload::FftParams::paper(nodes);
        cfg.geometry = ssmp_core::addr::Geometry::new(
            nodes,
            4,
            p.shared_blocks().max(cfg.geometry.shared_blocks),
        );
    }
}

fn print_report(r: &Report, json: bool) {
    if json {
        // Report::to_json owns the field list — it is the serde-stable
        // document `ssmp diff` compares, so the CLI only renders it.
        println!("{}", r.to_json().render());
    } else {
        // summary() already covers deadlock, retry, and fault lines
        print!("{}", r.summary());
    }
}

/// Writes the run's `ssmp-profile-v1` JSON to the `--profile=<file>`
/// target, when one was given (a bare `--profile` only prints/embeds).
fn write_profile_out(r: &Report, f: &Flags) -> Result<(), String> {
    let Some(path) = f.get("profile") else {
        return Ok(());
    };
    let p = r
        .profile
        .as_ref()
        .ok_or("internal error: --profile run produced no profile")?;
    std::fs::write(path, p.to_json().render() + "\n").map_err(|e| format!("--profile {path}: {e}"))
}

/// Writes the run's `ssmp-span-v1` JSON to the `--spans=<file>` target,
/// when one was given (a bare `--spans` only prints/embeds).
fn write_spans_out(r: &Report, f: &Flags) -> Result<(), String> {
    let Some(path) = f.get("spans") else {
        return Ok(());
    };
    let sp = r
        .spans
        .as_ref()
        .ok_or("internal error: --spans run produced no spans")?;
    std::fs::write(path, sp.to_json().render() + "\n").map_err(|e| format!("--spans {path}: {e}"))
}

fn run(f: &Flags) -> Result<(), String> {
    check_conflicts(f)?;
    if let Some(path) = f.get("repro") {
        return crate::fuzz::run_repro(path, f.has("json"));
    }
    let nodes = f.num::<usize>("nodes", 16)?;
    let workload = f.require("workload")?;
    let mut cfg = parse_config(config_selector(f)?, nodes)?;
    let sim = SimFlags::parse(f)?;
    sim.apply(&mut cfg)?;
    adapt_geometry(&mut cfg, workload, nodes);
    let (wl, locks) = build_workload(workload, nodes, f)?;
    let tracer = build_tracer(f)?;
    let r = Machine::builder(cfg)
        .workload(wl)
        .locks(locks)
        .tracer(tracer)
        .profile(sim.profile)
        .spans(sim.spans)
        .check(sim.check)
        .build()
        .unwrap()
        .run();
    print_report(&r, f.has("json"));
    write_profile_out(&r, f)?;
    write_spans_out(&r, f)
}

/// What a `sweep` invocation enumerates.
enum SweepSpec {
    /// workload × configs × node counts, one run per cell.
    Grid {
        workload: String,
        configs: Vec<String>,
        nodes: Vec<usize>,
    },
    /// The Table 3 synchronization scenarios (par/ser lock + barrier,
    /// WBI vs CBL) per node count — the CI determinism spec.
    Table3 { nodes: Vec<usize> },
}

fn parse_nodes(list: &[String]) -> Result<Vec<usize>, String> {
    list.iter()
        .map(|s| {
            let n: usize = s.parse().map_err(|_| format!("bad node count '{s}'"))?;
            if n == 0 || !n.is_power_of_two() {
                return Err(format!(
                    "--nodes must be powers of two for the omega network, got {n}"
                ));
            }
            Ok(n)
        })
        .collect()
}

fn parse_points_spec(spec: &str, quick: bool) -> Result<SweepSpec, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["table3"] => {
            let ns: &[&str] = if quick {
                &["4", "16"]
            } else {
                &["4", "8", "16", "32", "64"]
            };
            Ok(SweepSpec::Table3 {
                nodes: parse_nodes(&ns.iter().map(|s| s.to_string()).collect::<Vec<_>>())?,
            })
        }
        ["table3", ns] => Ok(SweepSpec::Table3 {
            nodes: parse_nodes(
                &ns.split(',')
                    .map(|s| s.trim().to_string())
                    .collect::<Vec<_>>(),
            )?,
        }),
        [wl, cfgs, ns] => Ok(SweepSpec::Grid {
            workload: wl.to_string(),
            configs: cfgs.split(',').map(|s| s.trim().to_string()).collect(),
            nodes: parse_nodes(
                &ns.split(',')
                    .map(|s| s.trim().to_string())
                    .collect::<Vec<_>>(),
            )?,
        }),
        _ => Err(format!(
            "--points '{spec}': expected 'table3[:<nodes>]' or '<workload>:<cfg,cfg>:<n,n>'"
        )),
    }
}

/// The workload-shaping switches that don't fit a single number: the
/// hotspot fraction plus the profiler's showcase modes (hot refs routed
/// through lock 0; SOR's packed false-sharing boundary layout).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WorkloadShape {
    hot: f64,
    hot_lock: bool,
    packed: bool,
}

/// Builds a workload from explicit parameters (the parallel-sweep
/// equivalent of [`build_workload`]: point closures cannot hold `Flags`).
pub(crate) fn sweep_workload(
    name: &str,
    nodes: usize,
    grain: Grain,
    tasks: usize,
    shape: WorkloadShape,
    seed: u64,
) -> (Box<dyn Workload>, usize) {
    match name {
        "work-queue" => {
            let mut p = WorkQueueParams::strong(nodes, grain, tasks);
            p.seed = seed;
            let wl = WorkQueue::new(p);
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "sync" => {
            let mut p = SyncParams::paper(nodes, grain.refs(), tasks.div_ceil(nodes));
            p.seed = seed;
            let wl = SyncModel::new(p);
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "solver" => {
            let p = SolverParams::paper(nodes, ssmp_workload::Allocation::Packed, 6);
            let wl = LinearSolver::new(p);
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "fft" => {
            let p = ssmp_workload::FftParams::paper(nodes);
            let wl = ssmp_workload::FftPhases::new(p);
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "hotspot" => {
            let mut p = HotspotParams::new(nodes, shape.hot, grain.refs());
            p.hot_locks = shape.hot_lock;
            let wl = Hotspot::new(p);
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "sor" => {
            // one full sweep per 8·nodes tasks keeps --tasks meaningful
            let sweeps = (tasks / (8 * nodes).max(1)).max(1) * 4;
            let p = if shape.packed {
                SorParams::packed(nodes, sweeps)
            } else {
                SorParams::new(nodes, sweeps)
            };
            let wl = Sor::new(p);
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        other => unreachable!("workload '{other}' was validated at registration"),
    }
}

/// Runs a point sweep on the `ssmp_bench::exp` engine: every point is an
/// independent simulation fanned across `--jobs` worker threads, with
/// per-point seeds derived from `--seed` and the point index. The JSON
/// artifact (`--json` / `--out`) is byte-identical for any `--jobs`; a
/// point that trips the cycle-budget watchdog or panics is reported as a
/// failed point without aborting the rest of the sweep.
fn sweep(f: &Flags) -> Result<(), String> {
    use ssmp_bench::exp::{default_jobs, Experiment, PointOutput, RunnerOpts};

    let quick = f.has("quick") || std::env::var_os("SSMP_QUICK").is_some();
    let json = f.has("json");
    let sim = SimFlags::parse(f)?;
    let profile = sim.profile;
    let spans = sim.spans;
    let check = sim.check;
    let jobs = f.num::<usize>("jobs", default_jobs())?;
    let master = f.num::<u64>("seed", 0xC11)?;
    let grain = parse_grain(f.get("grain").unwrap_or("medium"))?;
    let tasks_flag = match f.get("tasks") {
        Some(s) => Some(
            s.parse::<usize>()
                .map_err(|_| format!("--tasks: cannot parse '{s}'"))?,
        ),
        None => None,
    };
    let shape = WorkloadShape {
        hot: f.num::<f64>("hot", 0.2)?,
        hot_lock: f.has("hot-lock"),
        packed: f.has("packed"),
    };

    let protocol_configs = match f.get("protocol") {
        Some(_) => {
            let ps = f.list("protocol", &[]);
            for p in &ps {
                check_protocol(p)?;
            }
            Some(ps)
        }
        None => None,
    };
    let spec = match f.get("points") {
        Some(s) => parse_points_spec(s, quick)?,
        None => SweepSpec::Grid {
            workload: f.require("workload")?.to_string(),
            configs: match protocol_configs {
                Some(ps) => ps,
                None => {
                    let cs = f.list("config", &["wbi", "cbl", "bc-cbl"]);
                    if f.get("config").is_some() {
                        for c in &cs {
                            warn_config_deprecated(c);
                        }
                    }
                    cs
                }
            },
            nodes: parse_nodes(&f.list(
                "nodes",
                if quick {
                    &["4", "8"]
                } else {
                    &["4", "8", "16", "32"]
                },
            ))?,
        },
    };

    let mut exp = Experiment::new("sweep").seed(master);
    match &spec {
        SweepSpec::Grid {
            workload,
            configs,
            nodes,
        } => {
            for &n in nodes {
                for c in configs {
                    // validate the cell eagerly so usage errors surface
                    // before any simulation starts
                    let mut cfg = parse_config(c, n)?;
                    sim.apply(&mut cfg)?;
                    adapt_geometry(&mut cfg, workload, n);
                    check_workload(workload)?;
                    let wl_name = workload.clone();
                    let tasks = tasks_flag.unwrap_or(8 * n);
                    exp.point_with(
                        format!("{wl_name}/{c}/n={n}"),
                        &[
                            ("workload", wl_name.clone()),
                            ("config", c.clone()),
                            ("nodes", n.to_string()),
                        ],
                        move |ctx| {
                            let (wl, locks) =
                                sweep_workload(&wl_name, n, grain, tasks, shape, ctx.seed);
                            let r = Machine::builder(cfg.clone())
                                .workload(wl)
                                .locks(locks)
                                .profile(profile)
                                .spans(spans)
                                .check(check)
                                .build()
                                .expect("config validated at registration")
                                .run();
                            if let Some(v) = r.violations.first() {
                                // points run under catch_unwind: a panic is
                                // recorded as a failed point, not a crash
                                panic!("{}", v.render());
                            }
                            PointOutput::from_report(r, |r| {
                                vec![
                                    ("completion".into(), r.completion as f64),
                                    ("messages".into(), r.total_messages() as f64),
                                    ("packets".into(), r.net_packets as f64),
                                ]
                            })
                        },
                    );
                }
            }
        }
        SweepSpec::Table3 { nodes } => {
            use ssmp_bench::scenarios::{one_barrier, parallel_lock, serial_lock};
            use ssmp_engine::stats::keys;
            const T_CS: u64 = 20;
            if profile {
                // the scenario helpers assemble their machines internally;
                // use SSMP_PROFILE=1 (process-wide) to profile them
                return Err("--profile is not supported with --points table3; \
                     set SSMP_PROFILE=1 instead"
                    .into());
            }
            if spans {
                // same story as --profile: the helpers build their own
                // machines, but the builder also arms off the environment
                return Err("--spans is not supported with --points table3; \
                     set SSMP_SPANS=1 instead"
                    .into());
            }
            if check {
                // same story as --profile: the helpers build their own
                // machines, but the builder also arms off the environment
                return Err("--check is not supported with --points table3; \
                     set SSMP_CHECK=1 instead"
                    .into());
            }
            for &n in nodes {
                for (scenario, scheme) in [
                    ("par", "WBI"),
                    ("par", "CBL"),
                    ("ser", "WBI"),
                    ("ser", "CBL"),
                    ("barr", "WBI"),
                    ("barr", "CBL"),
                ] {
                    let mut cfg = match scheme {
                        "WBI" => MachineConfig::wbi(n),
                        _ => MachineConfig::cbl(n),
                    };
                    sim.apply(&mut cfg)?;
                    exp.point_with(
                        format!("n={n}/{scenario}/{scheme}"),
                        &[
                            ("nodes", n.to_string()),
                            ("scenario", scenario.to_string()),
                            ("scheme", scheme.to_string()),
                        ],
                        move |_| {
                            let msg_prefix = match (scenario, scheme) {
                                ("barr", "WBI") => keys::MSG_PREFIX,
                                ("barr", _) => keys::MSG_BAR_PREFIX,
                                (_, "WBI") => keys::MSG_WBI_PREFIX,
                                _ => keys::MSG_CBL_PREFIX,
                            };
                            let r = match scenario {
                                "par" => parallel_lock(cfg.clone(), T_CS),
                                "ser" => serial_lock(cfg.clone(), T_CS),
                                _ => one_barrier(cfg.clone()),
                            };
                            PointOutput::from_report(r, |r| {
                                vec![
                                    ("messages".into(), r.messages(msg_prefix) as f64),
                                    ("cycles".into(), r.completion as f64),
                                ]
                            })
                        },
                    );
                }
            }
        }
    }

    let opts = RunnerOpts::new()
        .jobs(jobs)
        .progress(!json && std::env::var_os("SSMP_NO_PROGRESS").is_none());
    let sweep = exp.run(&opts);

    if json {
        println!("{}", sweep.to_json());
    } else {
        match &spec {
            SweepSpec::Grid {
                configs,
                nodes,
                workload,
            } => {
                print!("{:>6}", "n");
                for c in configs {
                    print!(" {c:>12}");
                }
                println!();
                for &n in nodes {
                    print!("{n:>6}");
                    for c in configs {
                        let label = format!("{workload}/{c}/n={n}");
                        match sweep.get(&label).and_then(|p| p.value("completion")) {
                            Some(v) => print!(" {:>12}", v as u64),
                            None => print!(" {:>12}", "FAILED"),
                        }
                    }
                    println!();
                }
            }
            SweepSpec::Table3 { nodes } => {
                let cols = [
                    ("par", "WBI"),
                    ("par", "CBL"),
                    ("ser", "WBI"),
                    ("ser", "CBL"),
                    ("barr", "WBI"),
                    ("barr", "CBL"),
                ];
                print!("{:>6}", "n");
                for (sc, s) in cols {
                    print!(" {:>12}", format!("{sc} {s}"));
                }
                println!("  (messages)");
                for &n in nodes {
                    print!("{n:>6}");
                    for (sc, s) in cols {
                        let label = format!("n={n}/{sc}/{s}");
                        match sweep.get(&label).and_then(|p| p.value("messages")) {
                            Some(v) => print!(" {:>12}", v as u64),
                            None => print!(" {:>12}", "FAILED"),
                        }
                    }
                    println!();
                }
            }
        }
    }
    if let Some(path) = f.get("out") {
        std::fs::write(path, sweep.to_json() + "\n").map_err(|e| format!("--out {path}: {e}"))?;
    }
    let fails = sweep.failures();
    if !fails.is_empty() {
        eprintln!("{} of {} points failed:", fails.len(), sweep.points.len());
        for p in &fails {
            eprintln!("  {}: {}", p.label, p.error().unwrap());
            if let ssmp_bench::exp::PointStatus::Deadlock(d) = &p.status {
                for line in d.render().lines() {
                    eprintln!("    {line}");
                }
            }
        }
        std::process::exit(1);
    }
    // Differential gate: diff this sweep's artifact against a committed
    // baseline (perfguard's key classes decide what may move).
    if let Some(base_path) = f.get("diff-against") {
        let base = ssmp_diff::Artifact::parse(&read_input(base_path)?)
            .map_err(|e| format!("--diff-against {base_path}: {e}"))?;
        let current = ssmp_diff::Artifact::parse(&sweep.to_json())
            .map_err(|e| format!("internal error: sweep artifact unparseable: {e}"))?;
        let policy = ssmp_diff::DiffPolicy {
            tolerance: f.num::<f64>("tolerance", 0.5)?,
        };
        let d = ssmp_diff::Diff::between(&base, &current, base_path, "this sweep", &policy)?;
        print!("{}", d.render(f.num::<usize>("top", 8)?));
        let violations = d.violations();
        if !violations.is_empty() {
            eprintln!("{} violation(s) against {base_path}:", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}

fn program(f: &Flags) -> Result<(), String> {
    use ssmp_machine::Op;
    let path = f.require("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let progs = ssmp_machine::asm::parse_programs(&text).map_err(|e| e.to_string())?;
    let nodes = progs.len().next_power_of_two().max(2);
    // Barriers are global: every program must carry the same count, and
    // power-of-two padding nodes must participate too or the machine
    // deadlocks.
    let barrier_counts: Vec<usize> = progs
        .iter()
        .map(|p| p.iter().filter(|o| matches!(o, Op::Barrier)).count())
        .collect();
    let barriers = barrier_counts.first().copied().unwrap_or(0);
    if barrier_counts.iter().any(|&c| c != barriers) {
        return Err(format!(
            "barriers are global: every program needs the same barrier count, got {barrier_counts:?}"
        ));
    }
    // Size locks and semaphores from what the programs actually use.
    let mut max_lock = 1usize;
    let mut uses_sems = false;
    let mut max_sem = 0usize;
    for op in progs.iter().flatten() {
        match *op {
            Op::Lock(l, _)
            | Op::Unlock(l)
            | Op::LockedRead(l, _)
            | Op::LockedWrite(l, _)
            | Op::LockedWriteVal(l, _, _) => max_lock = max_lock.max(l + 1),
            Op::SemP(sid) | Op::SemV(sid) => {
                uses_sems = true;
                max_sem = max_sem.max(sid + 1);
            }
            _ => {}
        }
    }
    let mut streams = progs;
    streams.resize_with(nodes, || vec![Op::Barrier; barriers]);
    let mut cfg = parse_config(config_selector(f)?, nodes)?;
    let sim = SimFlags::parse(f)?;
    sim.apply(&mut cfg)?;
    cfg.record_reads = true;
    let sems: Vec<u64> = f
        .list("sems", &[])
        .iter()
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().map_err(|_| format!("bad semaphore credit '{s}'")))
        .collect::<Result<_, _>>()?;
    if uses_sems && sems.len() < max_sem {
        return Err(format!(
            "the program uses semaphore ids up to {} — pass --sems with {} credit value(s)",
            max_sem - 1,
            max_sem
        ));
    }
    let wl = ssmp_machine::op::Script::new(streams);
    let tracer = build_tracer(f)?;
    let r = Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(max_lock + 1)
        .semaphores(&sems)
        .tracer(tracer)
        .profile(sim.profile)
        .spans(sim.spans)
        .check(sim.check)
        .build()
        .unwrap()
        .run();
    print_report(&r, f.has("json"));
    if !f.has("json") && !r.read_log.is_empty() {
        println!("reads observed:");
        for (n, b, w, v) in &r.read_log {
            println!("  node {n}: block {b} word {w} = {v}");
        }
    }
    write_profile_out(&r, f)?;
    write_spans_out(&r, f)
}

fn trace_capture(f: &Flags) -> Result<(), String> {
    let nodes = f.num::<usize>("nodes", 8)?;
    let workload = f.require("workload")?;
    let out = f.require("out")?;
    let seed = f.num::<u64>("seed", 0xC11)?;
    // capture consumes the workload directly (idealised schedule)
    let grain = parse_grain(f.get("grain").unwrap_or("medium"))?;
    let tasks = f.num::<usize>("tasks", 8 * nodes)?;
    let trace = match workload {
        "sync" => {
            let mut p = SyncParams::paper(nodes, grain.refs(), tasks.div_ceil(nodes));
            p.seed = seed;
            Trace::capture(SyncModel::new(p), format!("sync n={nodes}"), seed)
        }
        "work-queue" => {
            let mut p = WorkQueueParams::strong(nodes, grain, tasks);
            p.seed = seed;
            Trace::capture(WorkQueue::new(p), format!("work-queue n={nodes}"), seed)
        }
        other => {
            return Err(format!(
                "trace capture supports sync|work-queue, not '{other}'"
            ))
        }
    };
    std::fs::write(out, trace.to_json()).map_err(|e| e.to_string())?;
    println!(
        "captured {} ops over {} nodes -> {out}",
        trace.len(),
        trace.nodes()
    );
    Ok(())
}

fn trace_replay(f: &Flags) -> Result<(), String> {
    use ssmp_machine::Op;
    let path = f.require("in")?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let trace = Trace::from_json(&text)?;
    let mut cfg = parse_config(config_selector(f)?, trace.nodes())?;
    let sim = SimFlags::parse(f)?;
    sim.apply(&mut cfg)?;
    // size the lock space from the trace contents
    let mut max_lock = 1usize;
    for op in trace.streams.iter().flatten() {
        if let Op::Lock(l, _)
        | Op::Unlock(l)
        | Op::LockedRead(l, _)
        | Op::LockedWrite(l, _)
        | Op::LockedWriteVal(l, _, _) = *op
        {
            max_lock = max_lock.max(l + 1);
        }
    }
    let tracer = build_tracer(f)?;
    let r = Machine::builder(cfg)
        .workload(Box::new(trace.replay()))
        .locks(max_lock + 1)
        .tracer(tracer)
        .profile(sim.profile)
        .spans(sim.spans)
        .check(sim.check)
        .build()
        .unwrap()
        .run();
    print_report(&r, f.has("json"));
    write_profile_out(&r, f)?;
    write_spans_out(&r, f)
}

/// Reads an input operand; `-` reads stdin so pipelines compose
/// (`ssmp run --json ... | ssmp diff baseline.json -`).
fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        use std::io::Read as _;
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("stdin: {e}"))?;
        Ok(text)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

/// `ssmp diff <a> <b>`: aligns two artifacts of the same kind (run
/// reports, sweeps, profiles, span sets) and explains where the cycles,
/// messages, and contention moved. `--json`/`--out` emit the
/// deterministic `ssmp-diff-v1` document; `--gate` exits 1 on policy
/// violations.
fn diff(pos: &[String], f: &Flags) -> Result<(), String> {
    let [a_path, b_path] = pos else {
        return Err(format!(
            "diff needs exactly two artifact paths (got {}): ssmp diff <a> <b>",
            pos.len()
        ));
    };
    let a =
        ssmp_diff::Artifact::parse(&read_input(a_path)?).map_err(|e| format!("{a_path}: {e}"))?;
    let b =
        ssmp_diff::Artifact::parse(&read_input(b_path)?).map_err(|e| format!("{b_path}: {e}"))?;
    let policy = ssmp_diff::DiffPolicy {
        tolerance: f.num::<f64>("tolerance", 0.5)?,
    };
    let d = ssmp_diff::Diff::between(&a, &b, a_path, b_path, &policy)?;
    if f.has("json") {
        println!("{}", d.to_json().render());
    } else {
        print!("{}", d.render(f.num::<usize>("top", 8)?));
    }
    if let Some(out) = f.get("out") {
        std::fs::write(out, d.to_json().render() + "\n")
            .map_err(|e| format!("--out {out}: {e}"))?;
    }
    if f.has("gate") {
        let violations = d.violations();
        if !violations.is_empty() {
            eprintln!("{} violation(s):", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
    Ok(())
}

/// Folds a `--trace` JSONL file into the same `ssmp-profile-v1` profile
/// a live `--profile` run produces — byte-identical JSON, so the two
/// paths can be diffed against each other (and are, in CI).
fn analyze(f: &Flags) -> Result<(), String> {
    let path = f.require("in")?;
    let text = read_input(path).map_err(|e| format!("--in {e}"))?;
    let profile =
        ssmp_profile::Profile::from_jsonl(text.as_bytes()).map_err(|e| format!("{path}: {e}"))?;
    if f.has("json") {
        println!("{}", profile.to_json().render());
    } else {
        let top = f.num::<usize>("top", 8)?;
        print!("{}", profile.render_table(top));
    }
    if let Some(out) = f.get("out") {
        std::fs::write(out, profile.to_json().render() + "\n")
            .map_err(|e| format!("--out {out}: {e}"))?;
    }
    Ok(())
}

/// Stitches a `--trace` JSONL file into the same `ssmp-span-v1` span set
/// a live `--spans` run produces — byte-identical JSON, so the two paths
/// can be diffed against each other (and are, in CI).
fn spans(f: &Flags) -> Result<(), String> {
    let path = f.require("in")?;
    let text = read_input(path).map_err(|e| format!("--in {e}"))?;
    let set =
        ssmp_span::SpanSet::from_jsonl(text.as_bytes()).map_err(|e| format!("{path}: {e}"))?;
    if f.has("json") {
        println!("{}", set.to_json().render());
    } else {
        let top = f.num::<usize>("top", 8)?;
        print!("{}", set.render_table(top));
    }
    if let Some(out) = f.get("out") {
        std::fs::write(out, set.to_json().render() + "\n")
            .map_err(|e| format!("--out {out}: {e}"))?;
    }
    Ok(())
}

/// Summarizes (and optionally validates) an event-trace file produced by
/// `--trace`: JSONL (one event per line) or Chrome-trace/Perfetto JSON.
fn trace_stats(f: &Flags) -> Result<(), String> {
    use ssmp_engine::trace::validate_jsonl;
    use ssmp_engine::Json;
    use std::collections::BTreeMap;
    let path = f.require("in")?;
    let text = read_input(path).map_err(|e| format!("--in {e}"))?;
    let validate = f.has("validate");
    let json = f.has("json");
    // Both formats start with '{'; only a Chrome-trace file is a single
    // document with a traceEvents array (JSONL events never carry that key).
    let chrome = text
        .lines()
        .next()
        .is_some_and(|l| l.contains("\"traceEvents\"") || Json::parse(l).is_err());
    if chrome {
        // Chrome-trace / Perfetto JSON.
        let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .ok_or_else(|| format!("{path}: no traceEvents array — not a Chrome-trace file"))?;
        let mut by_phase: BTreeMap<String, u64> = BTreeMap::new();
        for ev in events {
            let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap_or("?");
            *by_phase.entry(ph.to_string()).or_insert(0) += 1;
            if validate && ev.get("ph").is_none() {
                return Err(format!("{path}: trace event without a 'ph' field"));
            }
        }
        if json {
            let doc = Json::Obj(vec![
                ("format".into(), Json::str("chrome-trace")),
                ("events".into(), Json::num(events.len() as u64)),
                (
                    "by_phase".into(),
                    Json::Obj(
                        by_phase
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::num(*v)))
                            .collect(),
                    ),
                ),
            ]);
            println!("{}", doc.render());
            return Ok(());
        }
        println!("chrome-trace: {} events", events.len());
        for (ph, n) in &by_phase {
            let label = match ph.as_str() {
                "M" => "metadata",
                "X" => "span",
                "i" => "instant",
                "s" => "flow-start",
                "f" => "flow-end",
                _ => "other",
            };
            println!("  ph={ph} ({label}): {n}");
        }
        return Ok(());
    }
    // JSONL: one event object per line.
    let mut total = 0u64;
    let mut by_key: BTreeMap<String, u64> = BTreeMap::new();
    let mut first: Option<u64> = None;
    let mut last = 0u64;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        if validate {
            validate_jsonl(&doc).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        }
        total += 1;
        let fam = doc.get("family").and_then(|v| v.as_str()).unwrap_or("?");
        let kind = doc.get("kind").and_then(|v| v.as_str()).unwrap_or("?");
        *by_key.entry(format!("{fam}/{kind}")).or_insert(0) += 1;
        if let Some(c) = doc.get("cycle").and_then(|v| v.as_u64()) {
            first = Some(first.map_or(c, |f| f.min(c)));
            last = last.max(c);
        }
    }
    // Span-stitching health: re-fold the stream through the span
    // stitcher so a truncated or filtered trace is diagnosed here
    // before anyone trusts `ssmp spans` output built from it.
    let h = ssmp_span::SpanSet::from_jsonl(text.as_bytes())
        .map_err(|e| format!("{path}: {e}"))?
        .health();
    if json {
        let mut fields = vec![
            ("format".to_string(), Json::str("jsonl")),
            ("events".into(), Json::num(total)),
            (
                "cycles".into(),
                Json::Obj(vec![
                    ("first".into(), Json::num(first.unwrap_or(0))),
                    ("last".into(), Json::num(last)),
                ]),
            ),
            (
                "by_key".into(),
                Json::Obj(
                    by_key
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::num(*v)))
                        .collect(),
                ),
            ),
            (
                "span_stitching".into(),
                Json::Obj(vec![
                    ("spans".into(), Json::num(h.spans)),
                    ("orphan_begins".into(), Json::num(h.orphan_begins)),
                    ("orphan_ends".into(), Json::num(h.orphan_ends)),
                    ("links".into(), Json::num(h.links)),
                    ("dangling_links".into(), Json::num(h.dangling_links)),
                    ("wires".into(), Json::num(h.wires)),
                    ("undelivered_wires".into(), Json::num(h.undelivered_wires)),
                    ("unmatched_delivers".into(), Json::num(h.unmatched_delivers)),
                    ("clean".into(), Json::Bool(h.clean())),
                ]),
            ),
        ];
        if validate {
            fields.push(("validation".into(), Json::str("ok")));
        }
        println!("{}", Json::Obj(fields).render());
        return Ok(());
    }
    println!(
        "jsonl: {} events over cycles {}..{}",
        total,
        first.unwrap_or(0),
        last
    );
    for (k, n) in &by_key {
        println!("  {k}: {n}");
    }
    println!(
        "span stitching: spans={} orphan-begins={} orphan-ends={} links={} \
         dangling-links={} wires={} undelivered={} unmatched-delivers={} -> {}",
        h.spans,
        h.orphan_begins,
        h.orphan_ends,
        h.links,
        h.dangling_links,
        h.wires,
        h.undelivered_wires,
        h.unmatched_delivers,
        if h.clean() { "clean" } else { "DEGRADED" }
    );
    if validate {
        println!("validation: ok");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&v(&["frobnicate"])).is_err());
        assert!(dispatch(&v(&[])).is_err());
    }

    #[test]
    fn run_executes_small_machine() {
        dispatch(&v(&[
            "run",
            "--workload",
            "work-queue",
            "--config",
            "bc-cbl",
            "--nodes",
            "4",
            "--grain",
            "fine",
            "--tasks",
            "8",
        ]))
        .unwrap();
    }

    #[test]
    fn run_rejects_non_power_of_two_nodes() {
        let e = dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--config",
            "cbl",
            "--nodes",
            "12",
        ]))
        .unwrap_err();
        assert!(e.contains("power of two"), "{e}");
    }

    #[test]
    fn run_rejects_bad_config() {
        let e = dispatch(&v(&["run", "--workload", "sync", "--config", "zzz"])).unwrap_err();
        assert!(e.contains("unknown config"));
    }

    #[test]
    fn run_accepts_every_protocol() {
        for p in PROTOCOLS {
            dispatch(&v(&[
                "run",
                "--workload",
                "sync",
                "--protocol",
                p,
                "--nodes",
                "4",
            ]))
            .unwrap();
        }
    }

    #[test]
    fn run_rejects_unknown_protocol() {
        let e = dispatch(&v(&["run", "--workload", "sync", "--protocol", "moesi"])).unwrap_err();
        assert!(e.contains("unknown protocol"), "{e}");
        assert!(e.contains("ric|wbi|mesi|dragon"), "{e}");
    }

    #[test]
    fn protocol_and_config_flags_conflict() {
        let e = dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--protocol",
            "mesi",
            "--config",
            "cbl",
        ]))
        .unwrap_err();
        assert!(e.contains("--protocol") && e.contains("--config"), "{e}");
    }

    #[test]
    fn sweep_accepts_protocol_list() {
        dispatch(&v(&[
            "sweep",
            "--workload",
            "sync",
            "--protocol",
            "ric,mesi,dragon",
            "--nodes",
            "4",
            "--quick",
        ]))
        .unwrap();
    }

    #[test]
    fn solver_and_fft_resize_geometry() {
        for wl in ["solver", "fft"] {
            dispatch(&v(&[
                "run",
                "--workload",
                wl,
                "--config",
                "sc-cbl",
                "--nodes",
                "8",
            ]))
            .unwrap();
        }
    }

    #[test]
    fn hotspot_runs_with_fraction() {
        dispatch(&v(&[
            "run",
            "--workload",
            "hotspot",
            "--config",
            "sc-cbl",
            "--nodes",
            "4",
            "--hot",
            "0.5",
            "--grain",
            "fine",
        ]))
        .unwrap();
    }

    #[test]
    fn trace_capture_then_replay_roundtrip() {
        let dir = std::env::temp_dir().join("ssmp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let path_s = path.to_str().unwrap();
        dispatch(&v(&[
            "trace",
            "capture",
            "--workload",
            "sync",
            "--nodes",
            "4",
            "--tasks",
            "8",
            "--out",
            path_s,
        ]))
        .unwrap();
        dispatch(&v(&["trace", "replay", "--in", path_s, "--config", "cbl"])).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn program_subcommand_runs_sasm() {
        let dir = std::env::temp_dir().join("ssmp_cli_prog");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.sasm");
        std::fs::write(
            &path,
            "writeval 0.0 7\nflush\nbarrier\n---\nbarrier\nread 0.0\n",
        )
        .unwrap();
        dispatch(&v(&[
            "program",
            "--file",
            path.to_str().unwrap(),
            "--config",
            "bc-cbl",
        ]))
        .unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn program_pads_barrier_participants() {
        // three programs with barriers pad to a 4-node machine; the idle
        // node must still participate or this deadlocks
        let dir = std::env::temp_dir().join("ssmp_cli_prog3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.sasm");
        std::fs::write(&path, "compute 5\nbarrier\n---\nbarrier\n---\nbarrier\n").unwrap();
        dispatch(&v(&[
            "program",
            "--file",
            path.to_str().unwrap(),
            "--config",
            "cbl",
        ]))
        .unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn program_rejects_unequal_barriers() {
        let dir = std::env::temp_dir().join("ssmp_cli_prog4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ub.sasm");
        std::fs::write(&path, "barrier\nbarrier\n---\nbarrier\n").unwrap();
        let e = dispatch(&v(&[
            "program",
            "--file",
            path.to_str().unwrap(),
            "--config",
            "cbl",
        ]))
        .unwrap_err();
        assert!(e.contains("same barrier count"), "{e}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn program_requires_sems_when_used() {
        let dir = std::env::temp_dir().join("ssmp_cli_prog5");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.sasm");
        std::fs::write(&path, "semp 0\nsemv 0\n---\ncompute 1\n").unwrap();
        let e = dispatch(&v(&[
            "program",
            "--file",
            path.to_str().unwrap(),
            "--config",
            "cbl",
        ]))
        .unwrap_err();
        assert!(e.contains("--sems"), "{e}");
        // and with credits provided it runs
        dispatch(&v(&[
            "program",
            "--file",
            path.to_str().unwrap(),
            "--config",
            "cbl",
            "--sems",
            "1",
        ]))
        .unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn program_reports_parse_errors() {
        let dir = std::env::temp_dir().join("ssmp_cli_prog2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.sasm");
        std::fs::write(&path, "bogus 1\n").unwrap();
        let e = dispatch(&v(&[
            "program",
            "--file",
            path.to_str().unwrap(),
            "--config",
            "cbl",
        ]))
        .unwrap_err();
        assert!(e.contains("line 1"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sweep_prints_matrix() {
        dispatch(&v(&[
            "sweep",
            "--workload",
            "work-queue",
            "--config",
            "cbl,bc-cbl",
            "--nodes",
            "4,8",
            "--grain",
            "fine",
            "--tasks",
            "8",
        ]))
        .unwrap();
    }

    #[test]
    fn points_spec_parses_all_forms() {
        match parse_points_spec("table3", false).unwrap() {
            SweepSpec::Table3 { nodes } => assert_eq!(nodes, vec![4, 8, 16, 32, 64]),
            _ => panic!("expected table3 spec"),
        }
        match parse_points_spec("table3", true).unwrap() {
            SweepSpec::Table3 { nodes } => assert_eq!(nodes, vec![4, 16]),
            _ => panic!("expected quick table3 spec"),
        }
        match parse_points_spec("table3:4,8", false).unwrap() {
            SweepSpec::Table3 { nodes } => assert_eq!(nodes, vec![4, 8]),
            _ => panic!("expected table3 spec with nodes"),
        }
        match parse_points_spec("sync:wbi,cbl:4,16", false).unwrap() {
            SweepSpec::Grid {
                workload,
                configs,
                nodes,
            } => {
                assert_eq!(workload, "sync");
                assert_eq!(configs, vec!["wbi", "cbl"]);
                assert_eq!(nodes, vec![4, 16]);
            }
            _ => panic!("expected grid spec"),
        }
        assert!(parse_points_spec("table3:4,12", false).is_err());
        assert!(parse_points_spec("sync:wbi", false).is_err());
        assert!(parse_points_spec("a:b:c:d", false).is_err());
    }

    #[test]
    fn sweep_points_table3_writes_artifact_independent_of_jobs() {
        let dir = std::env::temp_dir().join("ssmp_cli_sweep_jobs");
        std::fs::create_dir_all(&dir).unwrap();
        let out1 = dir.join("j1.json");
        let out2 = dir.join("j2.json");
        for (jobs, out) in [("1", &out1), ("4", &out2)] {
            dispatch(&v(&[
                "sweep",
                "--points",
                "table3:4",
                "--jobs",
                jobs,
                "--json",
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
        }
        let a = std::fs::read_to_string(&out1).unwrap();
        let b = std::fs::read_to_string(&out2).unwrap();
        assert_eq!(a, b, "sweep artifact must not depend on --jobs");
        assert!(a.contains("\"n=4/par/WBI\""));
        assert!(a.contains("\"messages\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_grid_spec_runs_with_explicit_seed() {
        dispatch(&v(&[
            "sweep",
            "--points",
            "work-queue:cbl:4",
            "--grain",
            "fine",
            "--tasks",
            "8",
            "--seed",
            "7",
            "--jobs",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn sweep_rejects_bad_points_spec() {
        assert!(dispatch(&v(&["sweep", "--points", "nope:cbl:4"])).is_err());
        assert!(dispatch(&v(&["sweep", "--points", "table3:6"])).is_err());
    }

    #[test]
    fn traced_run_writes_jsonl_and_stats_validates() {
        let dir = std::env::temp_dir().join("ssmp_cli_trace_jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ev.jsonl");
        let path_s = path.to_str().unwrap();
        dispatch(&v(&[
            "run",
            "--workload",
            "work-queue",
            "--config",
            "bc-cbl",
            "--nodes",
            "4",
            "--grain",
            "fine",
            "--tasks",
            "8",
            "--trace",
            path_s,
            "--metrics-interval",
            "100",
            "--json",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty(), "trace file empty");
        dispatch(&v(&["trace", "stats", "--in", path_s, "--validate"])).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn traced_run_writes_perfetto_and_stats_reads_it() {
        let dir = std::env::temp_dir().join("ssmp_cli_trace_perfetto");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ev.json");
        let path_s = path.to_str().unwrap();
        dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--config",
            "cbl",
            "--nodes",
            "4",
            "--tasks",
            "4",
            "--trace",
            path_s,
            "--trace-format",
            "perfetto",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("traceEvents"));
        dispatch(&v(&["trace", "stats", "--in", path_s])).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_filter_rejects_unknown_token() {
        let e = dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--config",
            "cbl",
            "--nodes",
            "4",
            "--trace",
            "/tmp/ssmp_never_written.jsonl",
            "--trace-filter",
            "bogus-token",
        ]))
        .unwrap_err();
        assert!(e.contains("bogus-token"), "{e}");
    }

    #[test]
    fn profiled_run_matches_offline_analyze() {
        // the tentpole guarantee: the live ProfileSink and the offline
        // `ssmp analyze` fold of the same trace emit identical JSON
        let dir = std::env::temp_dir().join("ssmp_cli_profile_equiv");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.jsonl");
        let live = dir.join("live.json");
        let offline = dir.join("offline.json");
        dispatch(&v(&[
            "run",
            "--workload",
            "hotspot",
            "--config",
            "cbl",
            "--nodes",
            "4",
            "--hot",
            "0.8",
            "--hot-lock",
            "--grain",
            "fine",
            "--trace",
            trace.to_str().unwrap(),
            &format!("--profile={}", live.display()),
            "--json",
        ]))
        .unwrap();
        dispatch(&v(&[
            "analyze",
            "--in",
            trace.to_str().unwrap(),
            "--out",
            offline.to_str().unwrap(),
            "--top",
            "4",
        ]))
        .unwrap();
        let a = std::fs::read_to_string(&live).unwrap();
        let b = std::fs::read_to_string(&offline).unwrap();
        assert!(!a.is_empty() && a.contains("ssmp-profile-v1"));
        assert_eq!(a, b, "live sink and offline analyze diverged");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn analyze_requires_input_file() {
        assert!(dispatch(&v(&["analyze"])).is_err());
        assert!(dispatch(&v(&["analyze", "--in", "/nonexistent/ssmp.jsonl"])).is_err());
    }

    #[test]
    fn spanned_run_matches_offline_spans() {
        // the tentpole guarantee: the live SpanSink and the offline
        // `ssmp spans` stitch of the same trace emit identical JSON
        let dir = std::env::temp_dir().join("ssmp_cli_spans_equiv");
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("t.jsonl");
        let live = dir.join("live.json");
        let offline = dir.join("offline.json");
        dispatch(&v(&[
            "run",
            "--workload",
            "work-queue",
            "--config",
            "bc-cbl",
            "--nodes",
            "4",
            "--grain",
            "fine",
            "--trace",
            trace.to_str().unwrap(),
            &format!("--spans={}", live.display()),
            "--json",
        ]))
        .unwrap();
        dispatch(&v(&[
            "spans",
            "--in",
            trace.to_str().unwrap(),
            "--out",
            offline.to_str().unwrap(),
            "--top",
            "4",
        ]))
        .unwrap();
        let a = std::fs::read_to_string(&live).unwrap();
        let b = std::fs::read_to_string(&offline).unwrap();
        assert!(!a.is_empty() && a.contains("ssmp-span-v1"));
        assert_eq!(a, b, "live sink and offline spans diverged");
        // and trace stats reports the stitch as clean
        dispatch(&v(&["trace", "stats", "--in", trace.to_str().unwrap()])).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spans_requires_input_file() {
        assert!(dispatch(&v(&["spans"])).is_err());
        assert!(dispatch(&v(&["spans", "--in", "/nonexistent/ssmp.jsonl"])).is_err());
    }

    #[test]
    fn spans_rejects_trace_filter() {
        let e = dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--config",
            "cbl",
            "--nodes",
            "4",
            "--spans",
            "--trace",
            "/tmp/ssmp_never_written4.jsonl",
            "--trace-filter",
            "cbl",
        ]))
        .unwrap_err();
        assert!(e.contains("--spans") && e.contains("--trace-filter"), "{e}");
    }

    #[test]
    fn sweep_embeds_spans_in_artifact() {
        let dir = std::env::temp_dir().join("ssmp_cli_sweep_spans");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("a.json");
        dispatch(&v(&[
            "sweep",
            "--points",
            "work-queue:bc-cbl:4",
            "--grain",
            "fine",
            "--tasks",
            "8",
            "--spans",
            "--json",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("ssmp-span-v1"), "artifact lacks spans");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_table3_rejects_spans_flag() {
        let e = dispatch(&v(&["sweep", "--points", "table3:4", "--spans"])).unwrap_err();
        assert!(e.contains("SSMP_SPANS"), "{e}");
    }

    #[test]
    fn profile_rejects_trace_filter() {
        let e = dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--config",
            "cbl",
            "--nodes",
            "4",
            "--profile",
            "--trace",
            "/tmp/ssmp_never_written2.jsonl",
            "--trace-filter",
            "cbl",
        ]))
        .unwrap_err();
        assert!(e.contains("--trace-filter"), "{e}");
    }

    #[test]
    fn check_rejects_trace_filter() {
        let e = dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--config",
            "cbl",
            "--nodes",
            "4",
            "--check",
            "--trace",
            "/tmp/ssmp_never_written3.jsonl",
            "--trace-filter",
            "cbl",
        ]))
        .unwrap_err();
        assert!(e.contains("--check") && e.contains("--trace-filter"), "{e}");
    }

    #[test]
    fn repro_rejects_scenario_flags() {
        // --repro carries the whole scenario; combining it with scenario
        // flags would silently ignore one side
        for extra in [
            &["--workload", "sync"][..],
            &["--config", "cbl"],
            &["--fault-seed", "7"],
            &["--planted-bug", "cbl-dedup"],
        ] {
            let mut args = vec!["run", "--repro", "/tmp/ssmp_no_such_repro.json"];
            args.extend_from_slice(extra);
            let e = dispatch(&v(&args)).unwrap_err();
            assert!(e.contains("--repro"), "{extra:?}: {e}");
        }
    }

    #[test]
    fn armed_run_and_sweep_stay_clean() {
        dispatch(&v(&[
            "run",
            "--workload",
            "work-queue",
            "--config",
            "bc-cbl",
            "--nodes",
            "4",
            "--check",
        ]))
        .unwrap();
        let e = dispatch(&v(&["sweep", "--points", "table3", "--quick", "--check"])).unwrap_err();
        assert!(e.contains("SSMP_CHECK"), "{e}");
    }

    #[test]
    fn sor_runs_padded_and_packed() {
        for cfg in ["wbi", "cbl"] {
            for layout in [
                &["--workload", "sor"][..],
                &["--workload", "sor", "--packed"],
            ] {
                let mut args = vec!["run"];
                args.extend_from_slice(layout);
                args.extend_from_slice(&["--config", cfg, "--nodes", "4", "--tasks", "32"]);
                dispatch(&v(&args)).unwrap();
            }
        }
    }

    #[test]
    fn sweep_embeds_profile_in_artifact() {
        let dir = std::env::temp_dir().join("ssmp_cli_sweep_profile");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("a.json");
        dispatch(&v(&[
            "sweep",
            "--points",
            "hotspot:cbl:4",
            "--grain",
            "fine",
            "--profile",
            "--json",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.contains("ssmp-profile-v1"), "artifact lacks profile");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_table3_rejects_profile_flag() {
        let e = dispatch(&v(&["sweep", "--points", "table3:4", "--profile"])).unwrap_err();
        assert!(e.contains("table3"), "{e}");
    }

    #[test]
    fn queue_flag_parses_and_rejects_unknown() {
        for q in ["heap", "wheel"] {
            dispatch(&v(&[
                "run",
                "--workload",
                "sync",
                "--config",
                "cbl",
                "--nodes",
                "4",
                "--tasks",
                "4",
                "--queue",
                q,
            ]))
            .unwrap();
        }
        let e = dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--config",
            "cbl",
            "--nodes",
            "4",
            "--queue",
            "fifo",
        ]))
        .unwrap_err();
        assert!(e.contains("unknown queue"), "{e}");
    }

    #[test]
    fn topology_flag_applies() {
        dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--config",
            "bc-cbl",
            "--nodes",
            "4",
            "--topology",
            "bus",
            "--tasks",
            "4",
        ]))
        .unwrap();
    }
}
