//! Subcommand implementations.

use ssmp_machine::{Machine, MachineConfig, Report, Workload};
use ssmp_workload::{
    Grain, Hotspot, HotspotParams, LinearSolver, SolverParams, SyncModel, SyncParams, Trace,
    WorkQueue, WorkQueueParams,
};

use crate::args::Flags;

/// CLI usage text.
pub const USAGE: &str = "\
usage:
  ssmp run   --workload <wl> --config <cfg> [--nodes N] [--grain g] [--tasks T]
             [--seed S] [--topology omega|bus|ideal] [--json]
  ssmp sweep --workload <wl> --config <cfg>[,cfg...] [--nodes 4,8,16,...]
             [--grain g] [--tasks T]
  ssmp trace capture --workload <wl> [--nodes N] [--grain g] [--tasks T]
             [--seed S] --out <file>
  ssmp trace replay  --in <file> --config <cfg> [--json]
  ssmp trace stats   --in <file> [--validate]
  ssmp program --file <prog.sasm> --config <cfg> [--sems c0,c1,...] [--json]

fault injection / robustness (run, sweep, trace replay, program):
  [--fault-seed S] [--drop-prob p] [--dup-prob p] [--delay-prob p]
  [--delay-cycles c] [--retry] [--retry-timeout c] [--retry-max n]
  [--cycle-budget c]

observability (run, trace replay, program):
  [--trace <file>] [--trace-format jsonl|perfetto] [--trace-filter f1,f2,...]
  [--trace-ring N] [--metrics-interval N]
  trace filter tokens: families wbi|ric|cbl|bar|sem|priv|node|net and/or
  kinds issue|net-inject|net-deliver|retry|fault|stall-begin|stall-end|
  lock-acquire|lock-release|flush

workloads: work-queue | sync | solver | fft | hotspot
configs:   wbi | wbi-backoff | cbl | sc-cbl | bc-cbl
grains:    fine | medium | coarse";

const VALUED: &[&str] = &[
    "workload",
    "config",
    "nodes",
    "grain",
    "tasks",
    "seed",
    "out",
    "in",
    "topology",
    "hot",
    "file",
    "sems",
    "fault-seed",
    "drop-prob",
    "dup-prob",
    "delay-prob",
    "delay-cycles",
    "retry-timeout",
    "retry-max",
    "cycle-budget",
    "trace",
    "trace-format",
    "trace-filter",
    "trace-ring",
    "metrics-interval",
];

/// Dispatches a full argv (without the binary name).
pub fn dispatch(argv: &[String]) -> Result<(), String> {
    match argv.first().map(|s| s.as_str()) {
        Some("run") => run(&Flags::parse(&argv[1..], VALUED)?),
        Some("sweep") => sweep(&Flags::parse(&argv[1..], VALUED)?),
        Some("trace") => match argv.get(1).map(|s| s.as_str()) {
            Some("capture") => trace_capture(&Flags::parse(&argv[2..], VALUED)?),
            Some("replay") => trace_replay(&Flags::parse(&argv[2..], VALUED)?),
            Some("stats") => trace_stats(&Flags::parse(&argv[2..], VALUED)?),
            _ => Err("trace needs 'capture', 'replay', or 'stats'".into()),
        },
        Some("program") => program(&Flags::parse(&argv[1..], VALUED)?),
        Some("help") | Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'")),
        None => Err("no command given".into()),
    }
}

fn parse_config(name: &str, nodes: usize) -> Result<MachineConfig, String> {
    if nodes == 0 || !nodes.is_power_of_two() {
        return Err(format!(
            "--nodes must be a power of two for the omega network, got {nodes}"
        ));
    }
    Ok(match name {
        "wbi" => MachineConfig::wbi(nodes),
        "wbi-backoff" => MachineConfig::wbi_backoff(nodes),
        "cbl" => MachineConfig::cbl(nodes),
        "sc-cbl" => MachineConfig::sc_cbl(nodes),
        "bc-cbl" => MachineConfig::bc_cbl(nodes),
        other => return Err(format!("unknown config '{other}'")),
    })
}

fn parse_grain(name: &str) -> Result<Grain, String> {
    Ok(match name {
        "fine" => Grain::Fine,
        "medium" => Grain::Medium,
        "coarse" => Grain::Coarse,
        other => return Err(format!("unknown grain '{other}'")),
    })
}

fn parse_topology(cfg: &mut MachineConfig, f: &Flags) -> Result<(), String> {
    if let Some(t) = f.get("topology") {
        cfg.topology = match t {
            "omega" => ssmp_net::Topology::Omega,
            "bus" => ssmp_net::Topology::Bus,
            "ideal" => ssmp_net::Topology::Ideal,
            other => return Err(format!("unknown topology '{other}'")),
        };
    }
    Ok(())
}

/// Applies the fault-injection, retry, and cycle-budget flags to `cfg`.
fn apply_robustness(cfg: &mut MachineConfig, f: &Flags) -> Result<(), String> {
    let drop_prob = f.num::<f64>("drop-prob", 0.0)?;
    let dup_prob = f.num::<f64>("dup-prob", 0.0)?;
    let delay_prob = f.num::<f64>("delay-prob", 0.0)?;
    if f.get("fault-seed").is_some() || drop_prob > 0.0 || dup_prob > 0.0 || delay_prob > 0.0 {
        let seed = f.num::<u64>("fault-seed", 0xFA)?;
        let mut fc = ssmp_net::FaultConfig::uniform(seed, drop_prob, dup_prob, delay_prob);
        fc.delay_cycles = f.num::<u64>("delay-cycles", fc.delay_cycles)?;
        cfg.fault = Some(fc);
    }
    if f.has("retry") || f.get("retry-timeout").is_some() || f.get("retry-max").is_some() {
        let mut rp = ssmp_machine::RetryPolicy::enabled();
        rp.timeout = f.num("retry-timeout", rp.timeout)?;
        rp.max_attempts = f.num("retry-max", rp.max_attempts)?;
        cfg.retry = rp;
    }
    cfg.max_cycles = f.num::<u64>("cycle-budget", cfg.max_cycles)?;
    cfg.validate().map_err(|e| e.to_string())
}

/// Applies the observability flags to `cfg` (interval metrics sampling).
fn apply_observability(cfg: &mut MachineConfig, f: &Flags) -> Result<(), String> {
    if f.get("metrics-interval").is_some() {
        let iv = f.num::<u64>("metrics-interval", 1000)?;
        if iv == 0 {
            return Err("--metrics-interval must be >= 1".into());
        }
        cfg.metrics_interval = Some(iv);
    }
    Ok(())
}

/// Builds the event tracer from the `--trace*` flags; off when `--trace`
/// is absent.
fn build_tracer(f: &Flags) -> Result<ssmp_engine::Tracer, String> {
    use ssmp_engine::{JsonlSink, PerfettoSink, TraceFilter, Tracer};
    let Some(path) = f.get("trace") else {
        return Ok(Tracer::off());
    };
    let filter = match f.get("trace-filter") {
        Some(spec) => TraceFilter::parse(spec)?,
        None => TraceFilter::all(),
    };
    let ring = f.num::<usize>("trace-ring", 256)?;
    let mut tracer = Tracer::new(filter).with_ring(ring);
    let file = std::fs::File::create(path).map_err(|e| format!("--trace {path}: {e}"))?;
    let w = std::io::BufWriter::new(file);
    match f.get("trace-format").unwrap_or("jsonl") {
        "jsonl" => tracer.add_sink(JsonlSink::new(w)),
        "perfetto" => tracer.add_sink(PerfettoSink::new(w)),
        other => {
            return Err(format!(
                "unknown trace format '{other}' (expected jsonl or perfetto)"
            ))
        }
    }
    Ok(tracer)
}

/// Builds the named workload; returns it plus the machine lock count.
fn build_workload(
    name: &str,
    nodes: usize,
    f: &Flags,
) -> Result<(Box<dyn Workload>, usize), String> {
    let grain = parse_grain(f.get("grain").unwrap_or("medium"))?;
    let tasks = f.num::<usize>("tasks", 8 * nodes)?;
    let seed = f.num::<u64>("seed", 0xC11)?;
    Ok(match name {
        "work-queue" => {
            let mut p = WorkQueueParams::strong(nodes, grain, tasks);
            p.seed = seed;
            let wl = WorkQueue::new(p);
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "sync" => {
            let mut p = SyncParams::paper(nodes, grain.refs(), tasks.div_ceil(nodes));
            p.seed = seed;
            let wl = SyncModel::new(p);
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "solver" => {
            let p = SolverParams::paper(nodes, ssmp_workload::Allocation::Packed, 6);
            let wl = LinearSolver::new(p);
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "fft" => {
            let p = ssmp_workload::FftParams::paper(nodes);
            let wl = ssmp_workload::FftPhases::new(p);
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "hotspot" => {
            let hot = f.num::<f64>("hot", 0.2)?;
            let wl = Hotspot::new(HotspotParams::new(nodes, hot, grain.refs()));
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        other => return Err(format!("unknown workload '{other}'")),
    })
}

fn adapt_geometry(cfg: &mut MachineConfig, workload: &str, nodes: usize) {
    // the solver and FFT size the shared region themselves
    if workload == "solver" {
        let p = SolverParams::paper(nodes, ssmp_workload::Allocation::Packed, 1);
        cfg.geometry = ssmp_core::addr::Geometry::new(
            nodes,
            4,
            p.shared_blocks().max(cfg.geometry.shared_blocks),
        );
    }
    if workload == "fft" {
        let p = ssmp_workload::FftParams::paper(nodes);
        cfg.geometry = ssmp_core::addr::Geometry::new(
            nodes,
            4,
            p.shared_blocks().max(cfg.geometry.shared_blocks),
        );
    }
}

fn print_report(r: &Report, json: bool) {
    use ssmp_engine::Json;
    if json {
        let counters = r
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), Json::num(v)))
            .collect();
        let stall_breakdown = r
            .stall_breakdown
            .iter()
            .map(|(k, v)| (k.to_string(), Json::num(*v)))
            .collect();
        let mut fields = vec![
            ("completion_cycles".into(), Json::num(r.completion)),
            ("net_packets".into(), Json::num(r.net_packets)),
            ("net_words".into(), Json::num(r.net_words)),
            ("net_queueing".into(), Json::num(r.net_queueing)),
            ("messages".into(), Json::num(r.total_messages())),
            ("lock_acquisitions".into(), Json::num(r.lock_wait.count())),
            (
                "lock_wait_mean".into(),
                Json::num(r.lock_wait.mean().unwrap_or(0.0)),
            ),
            (
                "lock_wait_p50".into(),
                Json::num(r.lock_wait.p50().unwrap_or(0)),
            ),
            (
                "lock_wait_p95".into(),
                Json::num(r.lock_wait.p95().unwrap_or(0)),
            ),
            (
                "lock_wait_p99".into(),
                Json::num(r.lock_wait.p99().unwrap_or(0)),
            ),
            ("deadlocked".into(), Json::Bool(r.deadlock.is_some())),
            ("retries".into(), Json::num(r.retries.iter().sum::<u64>())),
            (
                "retries_per_node".into(),
                Json::Arr(r.retries.iter().map(|&n| Json::num(n)).collect()),
            ),
            ("stall_breakdown".into(), Json::Obj(stall_breakdown)),
            ("counters".into(), Json::Obj(counters)),
        ];
        if let Some(fs) = &r.faults {
            fields.push((
                "faults".into(),
                Json::Obj(vec![
                    ("inspected".into(), Json::num(fs.inspected)),
                    ("dropped".into(), Json::num(fs.dropped)),
                    ("duplicated".into(), Json::num(fs.duplicated)),
                    ("delayed".into(), Json::num(fs.delayed)),
                ]),
            ));
        }
        if let Some(m) = &r.metrics {
            fields.push(("metrics".into(), m.to_json()));
        }
        let doc = Json::Obj(fields);
        println!("{}", doc.render());
    } else {
        // summary() already covers deadlock, retry, and fault lines
        print!("{}", r.summary());
    }
}

fn run(f: &Flags) -> Result<(), String> {
    let nodes = f.num::<usize>("nodes", 16)?;
    let workload = f.require("workload")?;
    let mut cfg = parse_config(f.require("config")?, nodes)?;
    parse_topology(&mut cfg, f)?;
    apply_robustness(&mut cfg, f)?;
    apply_observability(&mut cfg, f)?;
    adapt_geometry(&mut cfg, workload, nodes);
    let (wl, locks) = build_workload(workload, nodes, f)?;
    let tracer = build_tracer(f)?;
    let r = Machine::new(cfg, wl, locks).with_tracer(tracer).run();
    print_report(&r, f.has("json"));
    Ok(())
}

fn sweep(f: &Flags) -> Result<(), String> {
    let workload = f.require("workload")?;
    let configs = f.list("config", &["wbi", "cbl", "bc-cbl"]);
    let nodes: Vec<usize> = f
        .list("nodes", &["4", "8", "16", "32"])
        .iter()
        .map(|s| s.parse().map_err(|_| format!("bad node count '{s}'")))
        .collect::<Result<_, _>>()?;
    print!("{:>6}", "n");
    for c in &configs {
        print!(" {c:>12}");
    }
    println!();
    for &n in &nodes {
        print!("{n:>6}");
        for c in &configs {
            let mut cfg = parse_config(c, n)?;
            parse_topology(&mut cfg, f)?;
            apply_robustness(&mut cfg, f)?;
            adapt_geometry(&mut cfg, workload, n);
            let (wl, locks) = build_workload(workload, n, f)?;
            let r = Machine::new(cfg, wl, locks).run();
            print!(" {:>12}", r.completion);
        }
        println!();
    }
    Ok(())
}

fn program(f: &Flags) -> Result<(), String> {
    use ssmp_machine::Op;
    let path = f.require("file")?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let progs = ssmp_machine::asm::parse_programs(&text).map_err(|e| e.to_string())?;
    let nodes = progs.len().next_power_of_two().max(2);
    // Barriers are global: every program must carry the same count, and
    // power-of-two padding nodes must participate too or the machine
    // deadlocks.
    let barrier_counts: Vec<usize> = progs
        .iter()
        .map(|p| p.iter().filter(|o| matches!(o, Op::Barrier)).count())
        .collect();
    let barriers = barrier_counts.first().copied().unwrap_or(0);
    if barrier_counts.iter().any(|&c| c != barriers) {
        return Err(format!(
            "barriers are global: every program needs the same barrier count, got {barrier_counts:?}"
        ));
    }
    // Size locks and semaphores from what the programs actually use.
    let mut max_lock = 1usize;
    let mut uses_sems = false;
    let mut max_sem = 0usize;
    for op in progs.iter().flatten() {
        match *op {
            Op::Lock(l, _)
            | Op::Unlock(l)
            | Op::LockedRead(l, _)
            | Op::LockedWrite(l, _)
            | Op::LockedWriteVal(l, _, _) => max_lock = max_lock.max(l + 1),
            Op::SemP(sid) | Op::SemV(sid) => {
                uses_sems = true;
                max_sem = max_sem.max(sid + 1);
            }
            _ => {}
        }
    }
    let mut streams = progs;
    streams.resize_with(nodes, || vec![Op::Barrier; barriers]);
    let mut cfg = parse_config(f.require("config")?, nodes)?;
    parse_topology(&mut cfg, f)?;
    apply_robustness(&mut cfg, f)?;
    cfg.record_reads = true;
    let sems: Vec<u64> = f
        .list("sems", &[])
        .iter()
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().map_err(|_| format!("bad semaphore credit '{s}'")))
        .collect::<Result<_, _>>()?;
    if uses_sems && sems.len() < max_sem {
        return Err(format!(
            "the program uses semaphore ids up to {} — pass --sems with {} credit value(s)",
            max_sem - 1,
            max_sem
        ));
    }
    apply_observability(&mut cfg, f)?;
    let wl = ssmp_machine::op::Script::new(streams);
    let tracer = build_tracer(f)?;
    let r = Machine::new(cfg, Box::new(wl), max_lock + 1)
        .with_semaphores(&sems)
        .with_tracer(tracer)
        .run();
    print_report(&r, f.has("json"));
    if !f.has("json") && !r.read_log.is_empty() {
        println!("reads observed:");
        for (n, b, w, v) in &r.read_log {
            println!("  node {n}: block {b} word {w} = {v}");
        }
    }
    Ok(())
}

fn trace_capture(f: &Flags) -> Result<(), String> {
    let nodes = f.num::<usize>("nodes", 8)?;
    let workload = f.require("workload")?;
    let out = f.require("out")?;
    let seed = f.num::<u64>("seed", 0xC11)?;
    // capture consumes the workload directly (idealised schedule)
    let grain = parse_grain(f.get("grain").unwrap_or("medium"))?;
    let tasks = f.num::<usize>("tasks", 8 * nodes)?;
    let trace = match workload {
        "sync" => {
            let mut p = SyncParams::paper(nodes, grain.refs(), tasks.div_ceil(nodes));
            p.seed = seed;
            Trace::capture(SyncModel::new(p), format!("sync n={nodes}"), seed)
        }
        "work-queue" => {
            let mut p = WorkQueueParams::strong(nodes, grain, tasks);
            p.seed = seed;
            Trace::capture(WorkQueue::new(p), format!("work-queue n={nodes}"), seed)
        }
        other => {
            return Err(format!(
                "trace capture supports sync|work-queue, not '{other}'"
            ))
        }
    };
    std::fs::write(out, trace.to_json()).map_err(|e| e.to_string())?;
    println!(
        "captured {} ops over {} nodes -> {out}",
        trace.len(),
        trace.nodes()
    );
    Ok(())
}

fn trace_replay(f: &Flags) -> Result<(), String> {
    use ssmp_machine::Op;
    let path = f.require("in")?;
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let trace = Trace::from_json(&text)?;
    let mut cfg = parse_config(f.require("config")?, trace.nodes())?;
    parse_topology(&mut cfg, f)?;
    apply_robustness(&mut cfg, f)?;
    // size the lock space from the trace contents
    let mut max_lock = 1usize;
    for op in trace.streams.iter().flatten() {
        if let Op::Lock(l, _)
        | Op::Unlock(l)
        | Op::LockedRead(l, _)
        | Op::LockedWrite(l, _)
        | Op::LockedWriteVal(l, _, _) = *op
        {
            max_lock = max_lock.max(l + 1);
        }
    }
    apply_observability(&mut cfg, f)?;
    let tracer = build_tracer(f)?;
    let r = Machine::new(cfg, Box::new(trace.replay()), max_lock + 1)
        .with_tracer(tracer)
        .run();
    print_report(&r, f.has("json"));
    Ok(())
}

/// Summarizes (and optionally validates) an event-trace file produced by
/// `--trace`: JSONL (one event per line) or Chrome-trace/Perfetto JSON.
fn trace_stats(f: &Flags) -> Result<(), String> {
    use ssmp_engine::trace::validate_jsonl;
    use ssmp_engine::Json;
    use std::collections::BTreeMap;
    let path = f.require("in")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("--in {path}: {e}"))?;
    let validate = f.has("validate");
    // Both formats start with '{'; only a Chrome-trace file is a single
    // document with a traceEvents array (JSONL events never carry that key).
    let chrome = text
        .lines()
        .next()
        .is_some_and(|l| l.contains("\"traceEvents\"") || Json::parse(l).is_err());
    if chrome {
        // Chrome-trace / Perfetto JSON.
        let doc = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .ok_or_else(|| format!("{path}: no traceEvents array — not a Chrome-trace file"))?;
        let mut by_phase: BTreeMap<String, u64> = BTreeMap::new();
        for ev in events {
            let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap_or("?");
            *by_phase.entry(ph.to_string()).or_insert(0) += 1;
            if validate && ev.get("ph").is_none() {
                return Err(format!("{path}: trace event without a 'ph' field"));
            }
        }
        println!("chrome-trace: {} events", events.len());
        for (ph, n) in &by_phase {
            let label = match ph.as_str() {
                "M" => "metadata",
                "X" => "span",
                "i" => "instant",
                "s" => "flow-start",
                "f" => "flow-end",
                _ => "other",
            };
            println!("  ph={ph} ({label}): {n}");
        }
        return Ok(());
    }
    // JSONL: one event object per line.
    let mut total = 0u64;
    let mut by_key: BTreeMap<String, u64> = BTreeMap::new();
    let mut first: Option<u64> = None;
    let mut last = 0u64;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        if validate {
            validate_jsonl(&doc).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        }
        total += 1;
        let fam = doc.get("family").and_then(|v| v.as_str()).unwrap_or("?");
        let kind = doc.get("kind").and_then(|v| v.as_str()).unwrap_or("?");
        *by_key.entry(format!("{fam}/{kind}")).or_insert(0) += 1;
        if let Some(c) = doc.get("cycle").and_then(|v| v.as_u64()) {
            first = Some(first.map_or(c, |f| f.min(c)));
            last = last.max(c);
        }
    }
    println!(
        "jsonl: {} events over cycles {}..{}",
        total,
        first.unwrap_or(0),
        last
    );
    for (k, n) in &by_key {
        println!("  {k}: {n}");
    }
    if validate {
        println!("validation: ok");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unknown_command_errors() {
        assert!(dispatch(&v(&["frobnicate"])).is_err());
        assert!(dispatch(&v(&[])).is_err());
    }

    #[test]
    fn run_executes_small_machine() {
        dispatch(&v(&[
            "run",
            "--workload",
            "work-queue",
            "--config",
            "bc-cbl",
            "--nodes",
            "4",
            "--grain",
            "fine",
            "--tasks",
            "8",
        ]))
        .unwrap();
    }

    #[test]
    fn run_rejects_non_power_of_two_nodes() {
        let e = dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--config",
            "cbl",
            "--nodes",
            "12",
        ]))
        .unwrap_err();
        assert!(e.contains("power of two"), "{e}");
    }

    #[test]
    fn run_rejects_bad_config() {
        let e = dispatch(&v(&["run", "--workload", "sync", "--config", "zzz"])).unwrap_err();
        assert!(e.contains("unknown config"));
    }

    #[test]
    fn solver_and_fft_resize_geometry() {
        for wl in ["solver", "fft"] {
            dispatch(&v(&[
                "run",
                "--workload",
                wl,
                "--config",
                "sc-cbl",
                "--nodes",
                "8",
            ]))
            .unwrap();
        }
    }

    #[test]
    fn hotspot_runs_with_fraction() {
        dispatch(&v(&[
            "run",
            "--workload",
            "hotspot",
            "--config",
            "sc-cbl",
            "--nodes",
            "4",
            "--hot",
            "0.5",
            "--grain",
            "fine",
        ]))
        .unwrap();
    }

    #[test]
    fn trace_capture_then_replay_roundtrip() {
        let dir = std::env::temp_dir().join("ssmp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        let path_s = path.to_str().unwrap();
        dispatch(&v(&[
            "trace",
            "capture",
            "--workload",
            "sync",
            "--nodes",
            "4",
            "--tasks",
            "8",
            "--out",
            path_s,
        ]))
        .unwrap();
        dispatch(&v(&["trace", "replay", "--in", path_s, "--config", "cbl"])).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn program_subcommand_runs_sasm() {
        let dir = std::env::temp_dir().join("ssmp_cli_prog");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.sasm");
        std::fs::write(
            &path,
            "writeval 0.0 7\nflush\nbarrier\n---\nbarrier\nread 0.0\n",
        )
        .unwrap();
        dispatch(&v(&[
            "program",
            "--file",
            path.to_str().unwrap(),
            "--config",
            "bc-cbl",
        ]))
        .unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn program_pads_barrier_participants() {
        // three programs with barriers pad to a 4-node machine; the idle
        // node must still participate or this deadlocks
        let dir = std::env::temp_dir().join("ssmp_cli_prog3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.sasm");
        std::fs::write(&path, "compute 5\nbarrier\n---\nbarrier\n---\nbarrier\n").unwrap();
        dispatch(&v(&[
            "program",
            "--file",
            path.to_str().unwrap(),
            "--config",
            "cbl",
        ]))
        .unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn program_rejects_unequal_barriers() {
        let dir = std::env::temp_dir().join("ssmp_cli_prog4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ub.sasm");
        std::fs::write(&path, "barrier\nbarrier\n---\nbarrier\n").unwrap();
        let e = dispatch(&v(&[
            "program",
            "--file",
            path.to_str().unwrap(),
            "--config",
            "cbl",
        ]))
        .unwrap_err();
        assert!(e.contains("same barrier count"), "{e}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn program_requires_sems_when_used() {
        let dir = std::env::temp_dir().join("ssmp_cli_prog5");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.sasm");
        std::fs::write(&path, "semp 0\nsemv 0\n---\ncompute 1\n").unwrap();
        let e = dispatch(&v(&[
            "program",
            "--file",
            path.to_str().unwrap(),
            "--config",
            "cbl",
        ]))
        .unwrap_err();
        assert!(e.contains("--sems"), "{e}");
        // and with credits provided it runs
        dispatch(&v(&[
            "program",
            "--file",
            path.to_str().unwrap(),
            "--config",
            "cbl",
            "--sems",
            "1",
        ]))
        .unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn program_reports_parse_errors() {
        let dir = std::env::temp_dir().join("ssmp_cli_prog2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.sasm");
        std::fs::write(&path, "bogus 1\n").unwrap();
        let e = dispatch(&v(&[
            "program",
            "--file",
            path.to_str().unwrap(),
            "--config",
            "cbl",
        ]))
        .unwrap_err();
        assert!(e.contains("line 1"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sweep_prints_matrix() {
        dispatch(&v(&[
            "sweep",
            "--workload",
            "work-queue",
            "--config",
            "cbl,bc-cbl",
            "--nodes",
            "4,8",
            "--grain",
            "fine",
            "--tasks",
            "8",
        ]))
        .unwrap();
    }

    #[test]
    fn traced_run_writes_jsonl_and_stats_validates() {
        let dir = std::env::temp_dir().join("ssmp_cli_trace_jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ev.jsonl");
        let path_s = path.to_str().unwrap();
        dispatch(&v(&[
            "run",
            "--workload",
            "work-queue",
            "--config",
            "bc-cbl",
            "--nodes",
            "4",
            "--grain",
            "fine",
            "--tasks",
            "8",
            "--trace",
            path_s,
            "--metrics-interval",
            "100",
            "--json",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.is_empty(), "trace file empty");
        dispatch(&v(&["trace", "stats", "--in", path_s, "--validate"])).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn traced_run_writes_perfetto_and_stats_reads_it() {
        let dir = std::env::temp_dir().join("ssmp_cli_trace_perfetto");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ev.json");
        let path_s = path.to_str().unwrap();
        dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--config",
            "cbl",
            "--nodes",
            "4",
            "--tasks",
            "4",
            "--trace",
            path_s,
            "--trace-format",
            "perfetto",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("traceEvents"));
        dispatch(&v(&["trace", "stats", "--in", path_s])).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn trace_filter_rejects_unknown_token() {
        let e = dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--config",
            "cbl",
            "--nodes",
            "4",
            "--trace",
            "/tmp/ssmp_never_written.jsonl",
            "--trace-filter",
            "bogus-token",
        ]))
        .unwrap_err();
        assert!(e.contains("bogus-token"), "{e}");
    }

    #[test]
    fn topology_flag_applies() {
        dispatch(&v(&[
            "run",
            "--workload",
            "sync",
            "--config",
            "bc-cbl",
            "--nodes",
            "4",
            "--topology",
            "bus",
            "--tasks",
            "4",
        ]))
        .unwrap();
    }
}
