//! Queue-implementation invariance at the CLI boundary (DESIGN.md §11):
//! `--queue heap` and `--queue wheel` must produce **byte-identical**
//! `--json` run reports and byte-identical `ssmp-sweep-v1` sweep
//! artifacts. The event queue is a performance choice, never a semantic
//! one — any divergence here is a scheduler-ordering bug.

use std::path::PathBuf;
use std::process::Command;

fn run_cli(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_ssmp-cli"))
        .args(args)
        .output()
        .expect("spawn ssmp-cli");
    assert!(
        out.status.success(),
        "ssmp-cli {:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

/// Stdout of `run … --json --queue <kind>`.
fn run_json(base: &[&str], queue: &str) -> Vec<u8> {
    let mut args: Vec<&str> = base.to_vec();
    args.extend(["--json", "--queue", queue]);
    run_cli(&args)
}

#[test]
fn run_reports_are_byte_identical_across_queues() {
    // One case per protocol family the run command exercises: RIC data +
    // CBL locks, WBI with a contended lock + interval metrics, and the
    // barrier/semaphore-heavy sync microbenchmark.
    let cases: &[&[&str]] = &[
        &[
            "run",
            "--workload",
            "work-queue",
            "--config",
            "bc-cbl",
            "--nodes",
            "8",
            "--grain",
            "fine",
        ],
        &[
            "run",
            "--workload",
            "hotspot",
            "--config",
            "cbl",
            "--nodes",
            "8",
            "--hot",
            "0.8",
            "--hot-lock",
            "--grain",
            "fine",
            "--metrics-interval",
            "500",
        ],
        &[
            "run",
            "--workload",
            "sync",
            "--config",
            "cbl",
            "--nodes",
            "8",
        ],
    ];
    for base in cases {
        let heap = run_json(base, "heap");
        let wheel = run_json(base, "wheel");
        assert!(!heap.is_empty(), "no JSON emitted for {base:?}");
        assert_eq!(
            heap, wheel,
            "heap and wheel --json reports differ for {base:?}"
        );
    }
}

#[test]
fn sweep_artifacts_are_byte_identical_across_queues() {
    let dir = std::env::temp_dir();
    let artifact = |queue: &str| -> Vec<u8> {
        let path: PathBuf = dir.join(format!(
            "ssmp-queue-invariance-{}-{queue}.json",
            std::process::id()
        ));
        let path_s = path.to_str().expect("utf-8 temp path");
        run_cli(&[
            "sweep",
            "--points",
            "sync:wbi,cbl:4,8",
            "--quick",
            "--jobs",
            "2",
            "--json",
            "--queue",
            queue,
            "--out",
            path_s,
        ]);
        let bytes = std::fs::read(&path).expect("sweep artifact written");
        let _ = std::fs::remove_file(&path);
        bytes
    };
    let heap = artifact("heap");
    let wheel = artifact("wheel");
    assert!(
        String::from_utf8_lossy(&heap).contains("\"schema\":\"ssmp-sweep-v1\""),
        "artifact must carry the ssmp-sweep-v1 schema tag"
    );
    assert_eq!(
        heap, wheel,
        "heap and wheel sweep artifacts must serialize identically"
    );
}
