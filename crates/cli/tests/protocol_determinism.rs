//! Protocol-zoo determinism at the CLI boundary (DESIGN.md §14): every
//! coherence backend behind the `CoherenceProtocol` trait must be as
//! deterministic as the simulator it plugs into. Three invariances are
//! enforced for all four protocols:
//!
//! 1. **Jobs invariance** — `ssmp-sweep-v1` artifacts are byte-identical
//!    for `--jobs 1` and `--jobs 8` (per-point seeds derive from the
//!    master seed and point index, never from scheduling).
//! 2. **Sanitizer transparency** — an armed (`--check`) clean run's
//!    `--json` report is byte-identical to the unarmed run's. The
//!    sanitizer observes; it never perturbs.
//! 3. **Zero violations** — MESI and Dragon complete every paper
//!    workload with the sanitizer armed and nothing to report.

use std::path::PathBuf;
use std::process::Command;

const PROTOCOLS: &[&str] = &["ric", "wbi", "mesi", "dragon"];

fn run_cli(args: &[&str]) -> Vec<u8> {
    let out = Command::new(env!("CARGO_BIN_EXE_ssmp-cli"))
        .args(args)
        .output()
        .expect("spawn ssmp-cli");
    assert!(
        out.status.success(),
        "ssmp-cli {:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn sweep_artifacts_are_jobs_invariant_for_every_protocol() {
    // One sweep per paper workload covering all four backends at once;
    // the artifact must not depend on how points were fanned out.
    let dir = std::env::temp_dir();
    for wl in ["work-queue", "solver", "sor"] {
        let artifact = |jobs: &str| -> Vec<u8> {
            let path: PathBuf = dir.join(format!(
                "ssmp-protocol-determinism-{}-{wl}-j{jobs}.json",
                std::process::id()
            ));
            let path_s = path.to_str().expect("utf-8 temp path");
            run_cli(&[
                "sweep",
                "--workload",
                wl,
                "--protocol",
                "ric,wbi,mesi,dragon",
                "--nodes",
                "8",
                "--quick",
                "--jobs",
                jobs,
                "--json",
                "--out",
                path_s,
            ]);
            let bytes = std::fs::read(&path).expect("sweep artifact written");
            let _ = std::fs::remove_file(&path);
            bytes
        };
        let j1 = artifact("1");
        let j8 = artifact("8");
        assert!(
            String::from_utf8_lossy(&j1).contains("\"schema\":\"ssmp-sweep-v1\""),
            "artifact must carry the ssmp-sweep-v1 schema tag"
        );
        assert_eq!(
            j1, j8,
            "{wl}: --jobs 1 and --jobs 8 sweep artifacts must serialize identically"
        );
    }
}

#[test]
fn armed_sanitizer_run_reports_are_byte_identical_to_unarmed() {
    for wl in ["work-queue", "solver", "sor"] {
        for p in PROTOCOLS {
            let base = [
                "run",
                "--workload",
                wl,
                "--protocol",
                p,
                "--nodes",
                "8",
                "--json",
            ];
            let unarmed = run_cli(&base);
            let mut armed_args = base.to_vec();
            armed_args.push("--check");
            let armed = run_cli(&armed_args);
            assert!(!unarmed.is_empty(), "{wl}/{p}: no JSON emitted");
            assert_eq!(
                unarmed, armed,
                "{wl}/{p}: armed (--check) report differs from unarmed"
            );
        }
    }
}

#[test]
fn json_report_leads_with_the_chosen_protocol() {
    for p in PROTOCOLS {
        let out = run_cli(&[
            "run",
            "--workload",
            "sync",
            "--protocol",
            p,
            "--nodes",
            "4",
            "--json",
        ]);
        let s = String::from_utf8(out).expect("utf-8 JSON");
        assert!(
            s.starts_with(&format!("{{\"protocol\":\"{p}\",")),
            "{p}: report must lead with the protocol field, got: {}",
            &s[..s.len().min(80)]
        );
    }
}

#[test]
fn mesi_and_dragon_complete_every_paper_workload_clean() {
    for p in ["mesi", "dragon"] {
        for wl in ["work-queue", "sync", "solver", "fft", "sor"] {
            let out = run_cli(&[
                "run",
                "--workload",
                wl,
                "--protocol",
                p,
                "--nodes",
                "8",
                "--check",
            ]);
            let s = String::from_utf8_lossy(&out);
            assert!(
                s.contains("completion:"),
                "{wl}/{p}: run did not complete:\n{s}"
            );
            assert!(
                s.contains(&format!("protocol: {p}")),
                "{wl}/{p}: summary must name the protocol:\n{s}"
            );
            assert!(
                !s.contains("VIOLATION"),
                "{wl}/{p}: sanitizer reported a violation:\n{s}"
            );
            assert!(!s.contains("DEADLOCK"), "{wl}/{p}: watchdog fired:\n{s}");
        }
    }
}
