//! Differential observability at the CLI boundary: `ssmp diff` on real
//! artifacts produced by real runs.
//!
//! Acceptance invariants pinned here:
//!
//! 1. **Byte determinism** — diffing the same pair of artifacts twice
//!    renders byte-identical `ssmp-diff-v1` documents.
//! 2. **Exact-sum movement** — the stall-attribution movement table sums
//!    to the total node cycles on *both* sides, so the row deltas sum
//!    exactly to the total cycle delta.
//! 3. **Self-diff is empty** — `ssmp diff a a` reports zero deltas and
//!    passes `--gate`.
//! 4. **Gate semantics** — a drifted deterministic artifact fails
//!    `--gate` with exit 1; `sweep --diff-against` gates the same way.
//!
//! Plus the satellite surfaces: the `--config` deprecation warning,
//! `trace stats --json`, and `-` (stdin) operands for analyze/spans/diff.

use std::path::PathBuf;
use std::process::{Command, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ssmp-cli"))
}

fn run_cli(args: &[&str]) -> std::process::Output {
    cli().args(args).output().expect("spawn ssmp-cli")
}

fn run_cli_ok(args: &[&str]) -> Vec<u8> {
    let out = run_cli(args);
    assert!(
        out.status.success(),
        "ssmp-cli {:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

fn tmp(name: &str) -> (PathBuf, String) {
    let p = std::env::temp_dir().join(format!("ssmp-diff-cli-{}-{name}", std::process::id()));
    let s = p.to_str().expect("utf-8 temp path").to_string();
    (p, s)
}

/// A profiled + spanned hotspot report for one protocol.
fn hotspot_report(protocol: &str) -> Vec<u8> {
    run_cli_ok(&[
        "run",
        "--workload",
        "hotspot",
        "--protocol",
        protocol,
        "--nodes",
        "8",
        "--grain",
        "fine",
        "--hot",
        "0.6",
        "--profile",
        "--spans",
        "--json",
    ])
}

#[test]
fn diff_wbi_vs_dragon_is_deterministic_and_exact_sum() {
    let (wbi_p, wbi) = tmp("wbi.json");
    let (dragon_p, dragon) = tmp("dragon.json");
    std::fs::write(&wbi_p, hotspot_report("wbi")).unwrap();
    std::fs::write(&dragon_p, hotspot_report("dragon")).unwrap();

    let (d1_p, d1) = tmp("d1.json");
    let (d2_p, d2) = tmp("d2.json");
    let narrative = run_cli_ok(&["diff", &wbi, &dragon, "--out", &d1]);
    run_cli_ok(&["diff", &wbi, &dragon, "--out", &d2]);
    let doc1 = std::fs::read(&d1_p).unwrap();
    let doc2 = std::fs::read(&d2_p).unwrap();
    assert_eq!(
        doc1, doc2,
        "ssmp-diff-v1 document must be byte-deterministic"
    );

    let text = String::from_utf8(narrative).unwrap();
    assert!(text.contains("protocol: wbi -> dragon"), "{text}");
    assert!(text.contains("stall movement (exact-sum"), "{text}");
    assert!(text.contains("top movers (cycles):"), "{text}");

    // Exact-sum acceptance check, straight off the emitted artifact:
    // Σ movement rows == total node cycles, independently on each side.
    let doc = String::from_utf8(doc1).unwrap();
    let json = ssmp_engine::Json::parse(&doc).expect("diff artifact parses");
    assert_eq!(
        json.get("schema").and_then(|s| s.as_str()),
        Some("ssmp-diff-v1")
    );
    let profile = json
        .get("report")
        .and_then(|r| r.get("profile"))
        .expect("report diff embeds the profile diff");
    let cycles = profile.get("cycles").unwrap();
    let (mut sum_a, mut sum_b) = (0u64, 0u64);
    for row in profile
        .get("movement")
        .and_then(|m| m.as_array())
        .expect("movement rows")
    {
        sum_a += row.get("a").and_then(|v| v.as_u64()).unwrap();
        sum_b += row.get("b").and_then(|v| v.as_u64()).unwrap();
    }
    assert_eq!(Some(sum_a), cycles.get("a").and_then(|v| v.as_u64()));
    assert_eq!(Some(sum_b), cycles.get("b").and_then(|v| v.as_u64()));

    for p in [wbi_p, dragon_p, d1_p, d2_p] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn self_diff_reports_zero_deltas_and_passes_gate() {
    let (a_p, a) = tmp("self.json");
    std::fs::write(&a_p, hotspot_report("ric")).unwrap();
    let out = run_cli_ok(&["diff", &a, &a, "--gate"]);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("identical: no deltas"), "{text}");
    std::fs::remove_file(a_p).ok();
}

#[test]
fn gate_fails_on_deterministic_drift() {
    let (a_p, a) = tmp("gate-a.json");
    let (b_p, b) = tmp("gate-b.json");
    std::fs::write(&a_p, hotspot_report("wbi")).unwrap();
    std::fs::write(&b_p, hotspot_report("dragon")).unwrap();
    let out = run_cli(&["diff", &a, &b, "--gate"]);
    assert_eq!(out.status.code(), Some(1), "gate must exit 1 on drift");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("deterministic artifacts must be identical"),
        "{err}"
    );
    std::fs::remove_file(a_p).ok();
    std::fs::remove_file(b_p).ok();
}

#[test]
fn diff_rejects_kind_mismatch_and_bad_arity() {
    let (rep_p, rep) = tmp("kind-report.json");
    std::fs::write(&rep_p, hotspot_report("ric")).unwrap();
    let (sw_p, sw) = tmp("kind-sweep.json");
    run_cli_ok(&[
        "sweep", "--points", "table3:4", "--quick", "--jobs", "2", "--json", "--out", &sw,
    ]);
    let out = run_cli(&["diff", &rep, &sw]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("cannot diff a report artifact against a sweep artifact"),
        "{err}"
    );
    let out = run_cli(&["diff", &rep]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("exactly two artifact paths"),
        "arity error expected"
    );
    std::fs::remove_file(rep_p).ok();
    std::fs::remove_file(sw_p).ok();
}

#[test]
fn sweep_diff_against_gates_its_own_baseline() {
    let (base_p, base) = tmp("sweep-base.json");
    run_cli_ok(&[
        "sweep", "--points", "table3:4", "--quick", "--jobs", "2", "--json", "--out", &base,
    ]);
    // identical regeneration passes and prints the perfguard table
    let out = run_cli_ok(&[
        "sweep",
        "--points",
        "table3:4",
        "--quick",
        "--jobs",
        "1",
        "--json",
        "--diff-against",
        &base,
    ]);
    let text = String::from_utf8(out).unwrap();
    assert!(text.contains("identical: no deltas"), "{text}");
    // a different sweep against the same baseline fails the gate
    let out = run_cli(&[
        "sweep",
        "--points",
        "table3:8",
        "--quick",
        "--jobs",
        "2",
        "--json",
        "--diff-against",
        &base,
    ]);
    assert_eq!(out.status.code(), Some(1), "diff-against must gate");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing from"), "{err}");
    std::fs::remove_file(base_p).ok();
}

#[test]
fn config_spelling_warns_deprecated_but_protocol_does_not() {
    let out = run_cli(&[
        "run",
        "--workload",
        "sync",
        "--config",
        "wbi",
        "--nodes",
        "4",
        "--tasks",
        "4",
    ]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--config wbi is deprecated; use --protocol wbi"),
        "{err}"
    );
    let out = run_cli(&[
        "run",
        "--workload",
        "sync",
        "--protocol",
        "wbi",
        "--nodes",
        "4",
        "--tasks",
        "4",
    ]);
    assert!(out.status.success());
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("deprecated"),
        "--protocol must not warn"
    );
    // the lock-centric presets have no --protocol spelling: stay silent
    let out = run_cli(&[
        "run",
        "--workload",
        "sync",
        "--config",
        "bc-cbl",
        "--nodes",
        "4",
        "--tasks",
        "4",
    ]);
    assert!(out.status.success());
    assert!(
        !String::from_utf8_lossy(&out.stderr).contains("deprecated"),
        "lock presets must not warn"
    );
}

#[test]
fn trace_stats_emits_json_document() {
    let (trace_p, trace) = tmp("stats.jsonl");
    run_cli_ok(&[
        "run",
        "--workload",
        "work-queue",
        "--protocol",
        "wbi",
        "--nodes",
        "4",
        "--grain",
        "fine",
        "--tasks",
        "8",
        "--trace",
        &trace,
    ]);
    let out = run_cli_ok(&["trace", "stats", "--in", &trace, "--validate", "--json"]);
    let doc = ssmp_engine::Json::parse(&String::from_utf8(out).unwrap())
        .expect("trace stats --json must emit one JSON document");
    assert_eq!(doc.get("format").and_then(|f| f.as_str()), Some("jsonl"));
    assert!(doc.get("events").and_then(|e| e.as_u64()).unwrap() > 0);
    assert!(doc.get("by_key").is_some());
    assert_eq!(
        doc.get("span_stitching").and_then(|s| s.get("clean")),
        Some(&ssmp_engine::Json::Bool(true))
    );
    assert_eq!(doc.get("validation").and_then(|v| v.as_str()), Some("ok"));
    std::fs::remove_file(trace_p).ok();
}

#[test]
fn analyze_spans_and_diff_accept_stdin() {
    use std::io::Write as _;
    let (trace_p, trace) = tmp("stdin.jsonl");
    run_cli_ok(&[
        "run",
        "--workload",
        "hotspot",
        "--protocol",
        "wbi",
        "--nodes",
        "4",
        "--grain",
        "fine",
        "--trace",
        &trace,
    ]);
    let trace_bytes = std::fs::read(&trace_p).unwrap();
    for sub in ["analyze", "spans"] {
        let mut child = cli()
            .args([sub, "--in", "-", "--json"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn ssmp-cli");
        child.stdin.take().unwrap().write_all(&trace_bytes).unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "{sub} --in - failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdin_doc = String::from_utf8(out.stdout).unwrap();
        let file_doc = String::from_utf8(run_cli_ok(&[sub, "--in", &trace, "--json"])).unwrap();
        assert_eq!(
            stdin_doc, file_doc,
            "{sub}: stdin and file paths must agree"
        );
    }
    // and `ssmp diff` takes '-' as one operand
    let (rep_p, rep) = tmp("stdin-report.json");
    let report = hotspot_report("wbi");
    std::fs::write(&rep_p, &report).unwrap();
    let mut child = cli()
        .args(["diff", &rep, "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ssmp-cli");
    child.stdin.take().unwrap().write_all(&report).unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("identical: no deltas"),
        "self-diff via stdin must be empty"
    );
    std::fs::remove_file(trace_p).ok();
    std::fs::remove_file(rep_p).ok();
}

#[test]
fn profile_artifacts_diff_directly() {
    // `--profile=<file>` documents are first-class diff inputs too
    let (pa_p, pa) = tmp("prof-a.json");
    let (pb_p, pb) = tmp("prof-b.json");
    for (protocol, path) in [("wbi", &pa), ("dragon", &pb)] {
        run_cli_ok(&[
            "run",
            "--workload",
            "hotspot",
            "--protocol",
            protocol,
            "--nodes",
            "8",
            "--grain",
            "fine",
            "--hot",
            "0.6",
            &format!("--profile={path}"),
        ]);
    }
    let out = run_cli_ok(&["diff", &pa, &pb, "--json"]);
    let doc = ssmp_engine::Json::parse(&String::from_utf8(out).unwrap()).unwrap();
    assert_eq!(doc.get("kind").and_then(|k| k.as_str()), Some("profile"));
    assert_eq!(
        doc.get("identical"),
        Some(&ssmp_engine::Json::Bool(false)),
        "wbi and dragon hotspot profiles must differ"
    );
    std::fs::remove_file(pa_p).ok();
    std::fs::remove_file(pb_p).ok();
}
