//! Statistics collection: counters, accumulators and histograms.
//!
//! The paper's evaluation reports completion time in machine cycles and
//! reasons extensively about *message counts* (Table 3 compares WBI and CBL
//! by messages and time). Components therefore bump named counters as they
//! operate; experiment harnesses read them back to regenerate the tables.
//!
//! Counters are keyed by `&'static str` and stored in a `BTreeMap` so that
//! report iteration order is deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// A set of named monotone counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CounterSet {
    counters: BTreeMap<&'static str, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name`, creating it at zero if absent.
    #[inline]
    pub fn add(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Increments counter `name` by one.
    #[inline]
    pub fn bump(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Reads counter `name` (0 if never bumped).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Iterates `(name, value)` pairs in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges another counter set into this one (summing matching names).
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:<40} {v:>14}")?;
        }
        Ok(())
    }
}

/// Streaming min/max/mean/count accumulator.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator's observations into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples `x` with `floor(log2(x+1)) == i`, i.e. bucket 0
/// holds `x == 0`, bucket 1 holds `1..=2`, bucket 2 holds `3..=6`, and so on.
/// Good enough for latency distributions at simulator cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: u64) {
        let b = 64 - (x + 1).leading_zeros().min(63) as usize - 1;
        self.buckets[b.min(63)] += 1;
        self.count += 1;
        self.sum += x as u128;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate quantile: returns the *upper bound* of the bucket in which
    /// the `q`-quantile sample falls. `q` in `[0, 1]`.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                // upper bound of bucket i is 2^(i+1) - 2 (inclusive)
                return Some((1u64 << (i + 1)).saturating_sub(2));
            }
        }
        Some(u64::MAX)
    }

    /// Raw bucket counts (64 power-of-two buckets).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let mut c = CounterSet::new();
        c.bump("net.msg.read");
        c.add("net.msg.read", 2);
        c.bump("net.msg.write");
        assert_eq!(c.get("net.msg.read"), 3);
        assert_eq!(c.get("net.msg.write"), 1);
        assert_eq!(c.get("absent"), 0);
        assert_eq!(c.sum_prefix("net.msg."), 4);
        let keys: Vec<_> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["net.msg.read", "net.msg.write"]);
    }

    #[test]
    fn counters_merge() {
        let mut a = CounterSet::new();
        a.add("x", 2);
        let mut b = CounterSet::new();
        b.add("x", 3);
        b.add("y", 1);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn counter_display_lists_all() {
        let mut c = CounterSet::new();
        c.add("alpha", 1);
        c.add("beta", 2);
        let s = format!("{c}");
        assert!(s.contains("alpha") && s.contains("beta"));
    }

    #[test]
    fn accumulator_basic() {
        let mut a = Accumulator::new();
        assert_eq!(a.mean(), None);
        a.record(1.0);
        a.record(3.0);
        a.record(2.0);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(2.0));
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(3.0));
        assert_eq!(a.sum(), 6.0);
    }

    #[test]
    fn histogram_buckets_boundaries() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 1
        h.record(3); // bucket 2
        h.record(6); // bucket 2
        h.record(7); // bucket 3
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        for x in [10, 20, 30] {
            h.record(x);
        }
        assert_eq!(h.mean(), Some(20.0));
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let mut h = Histogram::new();
        for x in 0..1000u64 {
            h.record(x);
        }
        let q50 = h.quantile_bound(0.5).unwrap();
        let q99 = h.quantile_bound(0.99).unwrap();
        assert!(q50 <= q99);
        assert!(q50 >= 499 / 2, "median bound too low: {q50}");
        assert!(h.quantile_bound(0.0).is_some());
    }

    #[test]
    fn accumulator_merge() {
        let mut a = Accumulator::new();
        a.record(1.0);
        let mut b = Accumulator::new();
        b.record(5.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(3.0));
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(5.0));
        // merging empty is a no-op
        a.merge(&Accumulator::new());
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(67.0));
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new();
        assert_eq!(h.quantile_bound(0.5), None);
        assert_eq!(h.mean(), None);
    }

    proptest! {
        #[test]
        fn prop_histogram_count_and_mean(xs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for &x in &xs { h.record(x); }
            prop_assert_eq!(h.count(), xs.len() as u64);
            let mean = xs.iter().copied().map(|x| x as f64).sum::<f64>() / xs.len() as f64;
            prop_assert!((h.mean().unwrap() - mean).abs() < 1e-6);
        }

        #[test]
        fn prop_bucket_monotone_with_value(x in 0u64..u64::MAX/2) {
            // the bucket index for x is <= bucket index for 2x+1
            let mut h1 = Histogram::new();
            h1.record(x);
            let b1 = h1.buckets().iter().position(|&c| c > 0).unwrap();
            let mut h2 = Histogram::new();
            h2.record(2*x + 1);
            let b2 = h2.buckets().iter().position(|&c| c > 0).unwrap();
            prop_assert!(b1 <= b2);
        }
    }
}
