//! Statistics collection: counters, accumulators and histograms.
//!
//! The paper's evaluation reports completion time in machine cycles and
//! reasons extensively about *message counts* (Table 3 compares WBI and CBL
//! by messages and time). Components therefore bump named counters as they
//! operate; experiment harnesses read them back to regenerate the tables.
//!
//! Counters are keyed by `&'static str` and stored in a `BTreeMap` so that
//! report iteration order is deterministic.

use std::collections::BTreeMap;
use std::fmt;

pub mod keys {
    //! Canonical counter-key names.
    //!
    //! Every component that bumps a counter and every reader that consumes
    //! one goes through these constants, so a typo cannot silently split a
    //! counter into two names. Keys are dotted paths grouped by subsystem;
    //! `msg.*` keys double as the `detail` field of trace events, keeping
    //! counters and traces aligned.

    /// Watchdog declared a deadlock / budget exhaustion.
    pub const WATCHDOG_FIRED: &str = "watchdog.fired";

    /// WBI directory evicted an entry.
    pub const WBI_DIR_EVICTIONS: &str = "wbi.dir_evictions";
    /// WBI invalidation applied at a cache.
    pub const WBI_INVALIDATED: &str = "wbi.invalidated";
    /// WBI exclusive line downgraded to shared.
    pub const WBI_DOWNGRADED: &str = "wbi.downgraded";

    /// Prefix of all interconnect message counters.
    pub const MSG_PREFIX: &str = "msg.";
    /// Prefix of CBL protocol message counters.
    pub const MSG_CBL_PREFIX: &str = "msg.cbl.";
    /// Prefix of WBI protocol message counters.
    pub const MSG_WBI_PREFIX: &str = "msg.wbi.";
    /// Prefix of RIC protocol message counters.
    pub const MSG_RIC_PREFIX: &str = "msg.ric.";
    /// Prefix of hardware-barrier message counters.
    pub const MSG_BAR_PREFIX: &str = "msg.bar.";

    /// CBL lock request to home memory.
    pub const MSG_CBL_REQUEST: &str = "msg.cbl.request";
    /// CBL request forwarded to the current tail.
    pub const MSG_CBL_FORWARD: &str = "msg.cbl.forward";
    /// CBL grant issued by home memory.
    pub const MSG_CBL_GRANT_MEM: &str = "msg.cbl.grant_mem";
    /// CBL grant handed down the waiting chain.
    pub const MSG_CBL_GRANT_CHAIN: &str = "msg.cbl.grant_chain";
    /// CBL requester spliced into the queue.
    pub const MSG_CBL_ENQUEUED: &str = "msg.cbl.enqueued";
    /// CBL release sent to home memory.
    pub const MSG_CBL_RELEASE: &str = "msg.cbl.release";
    /// CBL release acknowledged.
    pub const MSG_CBL_RELEASE_ACK: &str = "msg.cbl.release_ack";
    /// CBL request bounced (queue hand-off race).
    pub const MSG_CBL_BOUNCE: &str = "msg.cbl.bounce";
    /// CBL queue splice message.
    pub const MSG_CBL_SPLICE: &str = "msg.cbl.splice";

    /// RIC read miss to home memory.
    pub const MSG_RIC_READ_MISS: &str = "msg.ric.read_miss";
    /// RIC read that joins the update list.
    pub const MSG_RIC_READ_UPDATE: &str = "msg.ric.read_update";
    /// RIC read reply with data.
    pub const MSG_RIC_READ_REPLY: &str = "msg.ric.read_reply";
    /// RIC global read (bypassing cache).
    pub const MSG_RIC_READ_GLOBAL: &str = "msg.ric.read_global";
    /// RIC global read reply.
    pub const MSG_RIC_READ_GLOBAL_REPLY: &str = "msg.ric.read_global_reply";
    /// RIC global write to home memory.
    pub const MSG_RIC_WRITE_GLOBAL: &str = "msg.ric.write_global";
    /// RIC write acknowledgement.
    pub const MSG_RIC_WRITE_ACK: &str = "msg.ric.write_ack";
    /// RIC update pushed to a list member.
    pub const MSG_RIC_UPDATE_PUSH: &str = "msg.ric.update_push";
    /// RIC update-list head change.
    pub const MSG_RIC_HEAD_CHANGE: &str = "msg.ric.head_change";
    /// RIC update-list splice.
    pub const MSG_RIC_SPLICE: &str = "msg.ric.splice";

    /// WBI read request.
    pub const MSG_WBI_READ_REQ: &str = "msg.wbi.read_req";
    /// WBI write (ownership) request.
    pub const MSG_WBI_WRITE_REQ: &str = "msg.wbi.write_req";
    /// WBI data reply, shared state.
    pub const MSG_WBI_DATA_SHARED: &str = "msg.wbi.data_shared";
    /// WBI data reply, exclusive-clean state.
    pub const MSG_WBI_DATA_EXCL_CLEAN: &str = "msg.wbi.data_excl_clean";
    /// WBI data reply, exclusive state.
    pub const MSG_WBI_DATA_EXCL: &str = "msg.wbi.data_excl";
    /// WBI invalidation request.
    pub const MSG_WBI_INV: &str = "msg.wbi.inv";
    /// WBI invalidation acknowledgement.
    pub const MSG_WBI_INV_ACK: &str = "msg.wbi.inv_ack";
    /// WBI fetch (shared) forwarded to owner.
    pub const MSG_WBI_FETCH_SHARED: &str = "msg.wbi.fetch_shared";
    /// WBI fetch (exclusive) forwarded to owner.
    pub const MSG_WBI_FETCH_EXCL: &str = "msg.wbi.fetch_excl";
    /// WBI owner-to-requester data transfer.
    pub const MSG_WBI_OWNER_DATA: &str = "msg.wbi.owner_data";
    /// WBI write-back to memory.
    pub const MSG_WBI_WRITE_BACK: &str = "msg.wbi.write_back";
    /// WBI write-back race resolution message.
    pub const MSG_WBI_WB_RACE: &str = "msg.wbi.wb_race";

    /// Hardware barrier arrival.
    pub const MSG_BAR_ARRIVE: &str = "msg.bar.arrive";
    /// Hardware barrier arrival acknowledgement.
    pub const MSG_BAR_ACK: &str = "msg.bar.ack";
    /// Hardware barrier release broadcast.
    pub const MSG_BAR_RELEASE: &str = "msg.bar.release";

    /// Semaphore P request.
    pub const MSG_SEM_P: &str = "msg.sem.p";
    /// Semaphore V request.
    pub const MSG_SEM_V: &str = "msg.sem.v";
    /// Semaphore grant.
    pub const MSG_SEM_GRANT: &str = "msg.sem.grant";
    /// Semaphore V acknowledgement.
    pub const MSG_SEM_V_ACK: &str = "msg.sem.v_ack";

    /// Private-memory miss traffic (request or fill).
    pub const MSG_PRIV: &str = "msg.priv";

    /// Duplicate delivery suppressed by wire-id dedup.
    pub const NET_DEDUP: &str = "net.dedup";

    /// Private miss fill completed.
    pub const PRIV_FILL: &str = "priv.fill";
    /// Private cache hit.
    pub const PRIV_HIT: &str = "priv.hit";
    /// Private cache miss.
    pub const PRIV_MISS: &str = "priv.miss";
    /// Private dirty-line writeback.
    pub const PRIV_WRITEBACK: &str = "priv.writeback";

    /// Hardware barrier episode passed.
    pub const BARRIER_HW_PASSED: &str = "barrier.hw.passed";
    /// Software barrier arrival.
    pub const BARRIER_SW_ARRIVE: &str = "barrier.sw.arrive";
    /// Software barrier notify write.
    pub const BARRIER_SW_NOTIFY: &str = "barrier.sw.notify";
    /// Software barrier episode passed.
    pub const BARRIER_SW_PASSED: &str = "barrier.sw.passed";

    /// Semaphore acquired (P granted).
    pub const SEM_ACQUIRED: &str = "sem.acquired";
    /// Semaphore P issued.
    pub const SEM_P: &str = "sem.p";
    /// Semaphore V issued.
    pub const SEM_V: &str = "sem.v";

    /// CBL lock granted to a requester.
    pub const LOCK_CBL_GRANTED: &str = "lock.cbl.granted";
    /// CBL release completed at home memory.
    pub const LOCK_CBL_RELEASE_COMPLETE: &str = "lock.cbl.release_complete";
    /// CBL release forwarded down the chain.
    pub const LOCK_CBL_RELEASE_FORWARDED: &str = "lock.cbl.release_forwarded";
    /// CBL re-request issued after a bounce.
    pub const LOCK_CBL_REREQUEST_WAIT: &str = "lock.cbl.rerequest_wait";

    /// Test&set attempt issued.
    pub const LOCK_TTS_TEST_AND_SET: &str = "lock.tts.test_and_set";
    /// Test&set observed the lock held.
    pub const LOCK_TTS_FAILED_TS: &str = "lock.tts.failed_ts";
    /// Test&test&set local spin iteration.
    pub const LOCK_TTS_SPIN: &str = "lock.tts.spin";
    /// Test&test&set lock acquired.
    pub const LOCK_TTS_ACQUIRED: &str = "lock.tts.acquired";
    /// Test&test&set release hit locally.
    pub const LOCK_TTS_RELEASE_LOCAL: &str = "lock.tts.release_local";
    /// Test&test&set release went remote.
    pub const LOCK_TTS_RELEASE_REMOTE: &str = "lock.tts.release_remote";

    /// Write-buffer entry acknowledged.
    pub const WBUF_ACKED: &str = "wbuf.acked";
    /// Processor stalled on a full write buffer.
    pub const WBUF_FULL_STALL: &str = "wbuf.full_stall";
    /// Write-buffer entry issued to the network.
    pub const WBUF_ISSUED: &str = "wbuf.issued";

    /// RIC update applied at a list member.
    pub const RIC_UPDATE_APPLIED: &str = "ric.update_applied";
    /// RIC update dropped (member no longer caching).
    pub const RIC_UPDATE_DROPPED: &str = "ric.update_dropped";

    /// Shared read hit in cache.
    pub const SHARED_READ_HIT: &str = "shared.read.hit";
    /// Shared read missed in cache.
    pub const SHARED_READ_MISS: &str = "shared.read.miss";
    /// Shared read served globally (uncached).
    pub const SHARED_READ_GLOBAL: &str = "shared.read.global";
    /// Spin iteration on a global location.
    pub const SHARED_SPIN_GLOBAL: &str = "shared.spin_global";
    /// Shared write hit in cache.
    pub const SHARED_WRITE_HIT: &str = "shared.write.hit";
    /// Shared write missed in cache.
    pub const SHARED_WRITE_MISS: &str = "shared.write.miss";
    /// Shared write performed globally (uncached).
    pub const SHARED_WRITE_GLOBAL: &str = "shared.write.global";

    /// Write-buffer flush forced by CP-Synch semantics.
    pub const FLUSH_BEFORE_CP_SYNCH: &str = "flush.before_cp_synch";
    /// Explicit FlushBuffer op completed.
    pub const FLUSH_EXPLICIT: &str = "flush.explicit";

    /// Retry budget exhausted for a request.
    pub const RETRY_EXHAUSTED: &str = "retry.exhausted";
    /// Timed-out request retransmitted.
    pub const RETRY_RETRANSMIT: &str = "retry.retransmit";
}

/// A set of named monotone counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CounterSet {
    counters: BTreeMap<&'static str, u64>,
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name`, creating it at zero if absent.
    #[inline]
    pub fn add(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Increments counter `name` by one.
    #[inline]
    pub fn bump(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Reads counter `name` (0 if never bumped).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Iterates `(name, value)` pairs in deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges another counter set into this one (summing matching names).
    pub fn merge(&mut self, other: &CounterSet) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:<40} {v:>14}")?;
        }
        Ok(())
    }
}

/// Streaming min/max/mean/count accumulator.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator's observations into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples `x` with `floor(log2(x+1)) == i`, i.e. bucket 0
/// holds `x == 0`, bucket 1 holds `1..=2`, bucket 2 holds `3..=6`, and so on.
/// Good enough for latency distributions at simulator cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: u64) {
        let b = 64 - (x + 1).leading_zeros().min(63) as usize - 1;
        self.buckets[b.min(63)] += 1;
        self.count += 1;
        self.sum += x as u128;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate quantile: returns the *upper bound* of the bucket in which
    /// the `q`-quantile sample falls. `q` in `[0, 1]`.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                // upper bound of bucket i is 2^(i+1) - 2 (inclusive)
                return Some((1u64 << (i + 1)).saturating_sub(2));
            }
        }
        Some(u64::MAX)
    }

    /// Median bound — see [`Histogram::quantile_bound`] (`None` if empty).
    pub fn p50(&self) -> Option<u64> {
        self.quantile_bound(0.50)
    }

    /// 95th-percentile bound (`None` if empty).
    pub fn p95(&self) -> Option<u64> {
        self.quantile_bound(0.95)
    }

    /// 99th-percentile bound (`None` if empty).
    pub fn p99(&self) -> Option<u64> {
        self.quantile_bound(0.99)
    }

    /// Raw bucket counts (64 power-of-two buckets).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let mut c = CounterSet::new();
        c.bump("net.msg.read");
        c.add("net.msg.read", 2);
        c.bump("net.msg.write");
        assert_eq!(c.get("net.msg.read"), 3);
        assert_eq!(c.get("net.msg.write"), 1);
        assert_eq!(c.get("absent"), 0);
        assert_eq!(c.sum_prefix("net.msg."), 4);
        let keys: Vec<_> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["net.msg.read", "net.msg.write"]);
    }

    #[test]
    fn counters_merge() {
        let mut a = CounterSet::new();
        a.add("x", 2);
        let mut b = CounterSet::new();
        b.add("x", 3);
        b.add("y", 1);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn counter_display_lists_all() {
        let mut c = CounterSet::new();
        c.add("alpha", 1);
        c.add("beta", 2);
        let s = format!("{c}");
        assert!(s.contains("alpha") && s.contains("beta"));
    }

    #[test]
    fn accumulator_basic() {
        let mut a = Accumulator::new();
        assert_eq!(a.mean(), None);
        a.record(1.0);
        a.record(3.0);
        a.record(2.0);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(2.0));
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(3.0));
        assert_eq!(a.sum(), 6.0);
    }

    #[test]
    fn histogram_buckets_boundaries() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 1
        h.record(3); // bucket 2
        h.record(6); // bucket 2
        h.record(7); // bucket 3
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        for x in [10, 20, 30] {
            h.record(x);
        }
        assert_eq!(h.mean(), Some(20.0));
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let mut h = Histogram::new();
        for x in 0..1000u64 {
            h.record(x);
        }
        let q50 = h.quantile_bound(0.5).unwrap();
        let q99 = h.quantile_bound(0.99).unwrap();
        assert!(q50 <= q99);
        assert!(q50 >= 499 / 2, "median bound too low: {q50}");
        assert!(h.quantile_bound(0.0).is_some());
    }

    #[test]
    fn histogram_named_percentiles() {
        let mut h = Histogram::new();
        for x in 0..1000u64 {
            h.record(x);
        }
        let (p50, p95, p99) = (h.p50().unwrap(), h.p95().unwrap(), h.p99().unwrap());
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= 499, "median bound must cover the true median");
        assert!(p99 >= 989, "p99 bound must cover the true p99");
        assert_eq!(Histogram::new().p95(), None);
    }

    #[test]
    fn keys_are_distinct() {
        let all = [
            keys::MSG_CBL_REQUEST,
            keys::MSG_RIC_UPDATE_PUSH,
            keys::MSG_WBI_INV,
            keys::LOCK_CBL_GRANTED,
            keys::LOCK_TTS_ACQUIRED,
            keys::WBUF_ISSUED,
            keys::RETRY_RETRANSMIT,
            keys::NET_DEDUP,
            keys::WATCHDOG_FIRED,
        ];
        let mut set: Vec<_> = all.to_vec();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), all.len());
        assert!(keys::MSG_CBL_REQUEST.starts_with(keys::MSG_CBL_PREFIX));
        assert!(keys::MSG_WBI_INV.starts_with(keys::MSG_WBI_PREFIX));
    }

    #[test]
    fn accumulator_merge() {
        let mut a = Accumulator::new();
        a.record(1.0);
        let mut b = Accumulator::new();
        b.record(5.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(3.0));
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(5.0));
        // merging empty is a no-op
        a.merge(&Accumulator::new());
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(67.0));
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new();
        assert_eq!(h.quantile_bound(0.5), None);
        assert_eq!(h.mean(), None);
    }

    proptest! {
        #[test]
        fn prop_histogram_count_and_mean(xs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for &x in &xs { h.record(x); }
            prop_assert_eq!(h.count(), xs.len() as u64);
            let mean = xs.iter().copied().map(|x| x as f64).sum::<f64>() / xs.len() as f64;
            prop_assert!((h.mean().unwrap() - mean).abs() < 1e-6);
        }

        #[test]
        fn prop_bucket_monotone_with_value(x in 0u64..u64::MAX/2) {
            // the bucket index for x is <= bucket index for 2x+1
            let mut h1 = Histogram::new();
            h1.record(x);
            let b1 = h1.buckets().iter().position(|&c| c > 0).unwrap();
            let mut h2 = Histogram::new();
            h2.record(2*x + 1);
            let b2 = h2.buckets().iter().position(|&c| c > 0).unwrap();
            prop_assert!(b1 <= b2);
        }
    }
}
