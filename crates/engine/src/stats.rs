//! Statistics collection: counters, accumulators and histograms.
//!
//! The paper's evaluation reports completion time in machine cycles and
//! reasons extensively about *message counts* (Table 3 compares WBI and CBL
//! by messages and time). Components therefore bump named counters as they
//! operate; experiment harnesses read them back to regenerate the tables.
//!
//! Counters are keyed by `&'static str` names but stored densely: the
//! `counters!` table below generates both the canonical key constants and a
//! [`CounterId`] enum, so a bump is an array index instead of a `BTreeMap`
//! lookup. The table is listed in sorted key order (checked by a test), so
//! iteration is deterministic and byte-identical to the old map-backed
//! store: a `touched` bitmask reproduces its "only ever-bumped keys appear"
//! reporting semantics.

use std::fmt;

/// Generates the `keys` constants, the dense [`CounterId`] enum, and the
/// name⇄id tables from one list of counters. Entries MUST be in sorted
/// key order (asserted by a unit test) so that ordinal order equals name
/// order and reports iterate identically to a sorted map.
macro_rules! counters {
    ($( $(#[$doc:meta])* $variant:ident, $konst:ident => $key:literal; )+) => {
        pub mod keys {
            //! Canonical counter-key names.
            //!
            //! Every component that bumps a counter and every reader that
            //! consumes one goes through these constants, so a typo cannot
            //! silently split a counter into two names. Keys are dotted
            //! paths grouped by subsystem; `msg.*` keys double as the
            //! `detail` field of trace events, keeping counters and traces
            //! aligned.

            $( $(#[$doc])* pub const $konst: &str = $key; )+

            /// Prefix of all interconnect message counters.
            pub const MSG_PREFIX: &str = "msg.";
            /// Prefix of CBL protocol message counters.
            pub const MSG_CBL_PREFIX: &str = "msg.cbl.";
            /// Prefix of WBI protocol message counters.
            pub const MSG_WBI_PREFIX: &str = "msg.wbi.";
            /// Prefix of RIC protocol message counters.
            pub const MSG_RIC_PREFIX: &str = "msg.ric.";
            /// Prefix of snooping-MESI protocol message counters.
            pub const MSG_MESI_PREFIX: &str = "msg.mesi.";
            /// Prefix of Dragon protocol message counters.
            pub const MSG_DRAGON_PREFIX: &str = "msg.dragon.";
            /// Prefix of hardware-barrier message counters.
            pub const MSG_BAR_PREFIX: &str = "msg.bar.";
        }

        /// Dense index of every counter key — one variant per entry of the
        /// `counters!` table, in sorted key order. Hot paths bump by id
        /// (an array index); names are recovered via [`CounterId::name`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum CounterId {
            $( $(#[$doc])* $variant, )+
        }

        impl CounterId {
            /// Key names, in the same (sorted) order as the variants.
            const NAMES: &'static [&'static str] = &[ $( $key, )+ ];

            /// Every counter id, in variant (= sorted key) order.
            pub const ALL: &'static [CounterId] = &[ $( CounterId::$variant, )+ ];

            /// Number of counters.
            pub const COUNT: usize = Self::NAMES.len();
        }
    };
}

counters! {
    /// Hardware barrier episode passed.
    BarrierHwPassed, BARRIER_HW_PASSED => "barrier.hw.passed";
    /// Software barrier arrival.
    BarrierSwArrive, BARRIER_SW_ARRIVE => "barrier.sw.arrive";
    /// Software barrier notify write.
    BarrierSwNotify, BARRIER_SW_NOTIFY => "barrier.sw.notify";
    /// Software barrier episode passed.
    BarrierSwPassed, BARRIER_SW_PASSED => "barrier.sw.passed";
    /// Dragon owner copy downgraded to shared-clean (read elsewhere).
    DragonDowngraded, DRAGON_DOWNGRADED => "dragon.downgraded";
    /// Dragon multicast update applied at a sharer's copy.
    DragonUpdateApplied, DRAGON_UPDATE_APPLIED => "dragon.update_applied";
    /// Write-buffer flush forced by CP-Synch semantics.
    FlushBeforeCpSynch, FLUSH_BEFORE_CP_SYNCH => "flush.before_cp_synch";
    /// Explicit FlushBuffer op completed.
    FlushExplicit, FLUSH_EXPLICIT => "flush.explicit";
    /// CBL lock granted to a requester.
    LockCblGranted, LOCK_CBL_GRANTED => "lock.cbl.granted";
    /// CBL release completed at home memory.
    LockCblReleaseComplete, LOCK_CBL_RELEASE_COMPLETE => "lock.cbl.release_complete";
    /// CBL release forwarded down the chain.
    LockCblReleaseForwarded, LOCK_CBL_RELEASE_FORWARDED => "lock.cbl.release_forwarded";
    /// CBL re-request issued after a bounce.
    LockCblRerequestWait, LOCK_CBL_REREQUEST_WAIT => "lock.cbl.rerequest_wait";
    /// Test&test&set lock acquired.
    LockTtsAcquired, LOCK_TTS_ACQUIRED => "lock.tts.acquired";
    /// Test&set observed the lock held.
    LockTtsFailedTs, LOCK_TTS_FAILED_TS => "lock.tts.failed_ts";
    /// Test&test&set release hit locally.
    LockTtsReleaseLocal, LOCK_TTS_RELEASE_LOCAL => "lock.tts.release_local";
    /// Test&test&set release went remote.
    LockTtsReleaseRemote, LOCK_TTS_RELEASE_REMOTE => "lock.tts.release_remote";
    /// Test&test&set local spin iteration.
    LockTtsSpin, LOCK_TTS_SPIN => "lock.tts.spin";
    /// Test&set attempt issued.
    LockTtsTestAndSet, LOCK_TTS_TEST_AND_SET => "lock.tts.test_and_set";
    /// MESI owner line downgraded to shared (read elsewhere).
    MesiDowngraded, MESI_DOWNGRADED => "mesi.downgraded";
    /// MESI invalidation applied at a cache.
    MesiInvalidated, MESI_INVALIDATED => "mesi.invalidated";
    /// Hardware barrier arrival acknowledgement.
    MsgBarAck, MSG_BAR_ACK => "msg.bar.ack";
    /// Hardware barrier arrival.
    MsgBarArrive, MSG_BAR_ARRIVE => "msg.bar.arrive";
    /// Hardware barrier release broadcast.
    MsgBarRelease, MSG_BAR_RELEASE => "msg.bar.release";
    /// CBL request bounced (queue hand-off race).
    MsgCblBounce, MSG_CBL_BOUNCE => "msg.cbl.bounce";
    /// CBL requester spliced into the queue.
    MsgCblEnqueued, MSG_CBL_ENQUEUED => "msg.cbl.enqueued";
    /// CBL request forwarded to the current tail.
    MsgCblForward, MSG_CBL_FORWARD => "msg.cbl.forward";
    /// CBL grant handed down the waiting chain.
    MsgCblGrantChain, MSG_CBL_GRANT_CHAIN => "msg.cbl.grant_chain";
    /// CBL grant issued by home memory.
    MsgCblGrantMem, MSG_CBL_GRANT_MEM => "msg.cbl.grant_mem";
    /// CBL release sent to home memory.
    MsgCblRelease, MSG_CBL_RELEASE => "msg.cbl.release";
    /// CBL release acknowledged.
    MsgCblReleaseAck, MSG_CBL_RELEASE_ACK => "msg.cbl.release_ack";
    /// CBL lock request to home memory.
    MsgCblRequest, MSG_CBL_REQUEST => "msg.cbl.request";
    /// CBL queue splice message.
    MsgCblSplice, MSG_CBL_SPLICE => "msg.cbl.splice";
    /// Dragon fetch forwarded to the exclusive owner.
    MsgDragonFetch, MSG_DRAGON_FETCH => "msg.dragon.fetch";
    /// Dragon fetch raced a vanished line; memory already current.
    MsgDragonFetchMiss, MSG_DRAGON_FETCH_MISS => "msg.dragon.fetch_miss";
    /// Dragon exclusive-clean fill (sole reader).
    MsgDragonFillExcl, MSG_DRAGON_FILL_EXCL => "msg.dragon.fill_excl";
    /// Dragon shared-clean fill.
    MsgDragonFillShared, MSG_DRAGON_FILL_SHARED => "msg.dragon.fill_shared";
    /// Dragon owner-to-home data transfer.
    MsgDragonOwnerData, MSG_DRAGON_OWNER_DATA => "msg.dragon.owner_data";
    /// Dragon read miss to home memory.
    MsgDragonRd, MSG_DRAGON_RD => "msg.dragon.rd";
    /// Dragon word update to home memory (write hit on a shared copy).
    MsgDragonUpd, MSG_DRAGON_UPD => "msg.dragon.upd";
    /// Dragon update acknowledged by a sharer.
    MsgDragonUpdAck, MSG_DRAGON_UPD_ACK => "msg.dragon.upd_ack";
    /// Dragon update complete, back to the writer.
    MsgDragonUpdDone, MSG_DRAGON_UPD_DONE => "msg.dragon.upd_done";
    /// Dragon write miss: fill plus word update in one transaction.
    MsgDragonUpdFill, MSG_DRAGON_UPD_FILL => "msg.dragon.upd_fill";
    /// Dragon update multicast to a sharer's copy.
    MsgDragonUpdPush, MSG_DRAGON_UPD_PUSH => "msg.dragon.upd_push";
    /// MESI bus read (read miss).
    MsgMesiBusRd, MSG_MESI_BUS_RD => "msg.mesi.bus_rd";
    /// MESI bus read-exclusive (write miss).
    MsgMesiBusRdx, MSG_MESI_BUS_RDX => "msg.mesi.bus_rdx";
    /// MESI bus upgrade (write hit on a shared copy).
    MsgMesiBusUpgr, MSG_MESI_BUS_UPGR => "msg.mesi.bus_upgr";
    /// MESI exclusive data reply.
    MsgMesiDataExcl, MSG_MESI_DATA_EXCL => "msg.mesi.data_excl";
    /// MESI exclusive-clean data reply (sole reader, 'E' grant).
    MsgMesiDataExclClean, MSG_MESI_DATA_EXCL_CLEAN => "msg.mesi.data_excl_clean";
    /// MESI shared data reply.
    MsgMesiDataShared, MSG_MESI_DATA_SHARED => "msg.mesi.data_shared";
    /// MESI fetch forwarded to the owner.
    MsgMesiFetch, MSG_MESI_FETCH => "msg.mesi.fetch";
    /// MESI fetch raced a vanished line; memory already current.
    MsgMesiFetchMiss, MSG_MESI_FETCH_MISS => "msg.mesi.fetch_miss";
    /// MESI snoop invalidation (broadcast to every other node).
    MsgMesiInv, MSG_MESI_INV => "msg.mesi.inv";
    /// MESI snoop invalidation acknowledged.
    MsgMesiInvAck, MSG_MESI_INV_ACK => "msg.mesi.inv_ack";
    /// MESI owner-to-home data transfer.
    MsgMesiOwnerData, MSG_MESI_OWNER_DATA => "msg.mesi.owner_data";
    /// MESI ownership-only upgrade grant.
    MsgMesiUpgradeAck, MSG_MESI_UPGRADE_ACK => "msg.mesi.upgrade_ack";
    /// Private-memory miss traffic (request or fill).
    MsgPriv, MSG_PRIV => "msg.priv";
    /// RIC update-list head change.
    MsgRicHeadChange, MSG_RIC_HEAD_CHANGE => "msg.ric.head_change";
    /// RIC global read (bypassing cache).
    MsgRicReadGlobal, MSG_RIC_READ_GLOBAL => "msg.ric.read_global";
    /// RIC global read reply.
    MsgRicReadGlobalReply, MSG_RIC_READ_GLOBAL_REPLY => "msg.ric.read_global_reply";
    /// RIC read miss to home memory.
    MsgRicReadMiss, MSG_RIC_READ_MISS => "msg.ric.read_miss";
    /// RIC read reply with data.
    MsgRicReadReply, MSG_RIC_READ_REPLY => "msg.ric.read_reply";
    /// RIC read that joins the update list.
    MsgRicReadUpdate, MSG_RIC_READ_UPDATE => "msg.ric.read_update";
    /// RIC update-list splice.
    MsgRicSplice, MSG_RIC_SPLICE => "msg.ric.splice";
    /// RIC update pushed to a list member.
    MsgRicUpdatePush, MSG_RIC_UPDATE_PUSH => "msg.ric.update_push";
    /// RIC write acknowledgement.
    MsgRicWriteAck, MSG_RIC_WRITE_ACK => "msg.ric.write_ack";
    /// RIC global write to home memory.
    MsgRicWriteGlobal, MSG_RIC_WRITE_GLOBAL => "msg.ric.write_global";
    /// Semaphore grant.
    MsgSemGrant, MSG_SEM_GRANT => "msg.sem.grant";
    /// Semaphore P request.
    MsgSemP, MSG_SEM_P => "msg.sem.p";
    /// Semaphore V request.
    MsgSemV, MSG_SEM_V => "msg.sem.v";
    /// Semaphore V acknowledgement.
    MsgSemVAck, MSG_SEM_V_ACK => "msg.sem.v_ack";
    /// WBI data reply, exclusive state.
    MsgWbiDataExcl, MSG_WBI_DATA_EXCL => "msg.wbi.data_excl";
    /// WBI data reply, exclusive-clean state.
    MsgWbiDataExclClean, MSG_WBI_DATA_EXCL_CLEAN => "msg.wbi.data_excl_clean";
    /// WBI data reply, shared state.
    MsgWbiDataShared, MSG_WBI_DATA_SHARED => "msg.wbi.data_shared";
    /// WBI fetch (exclusive) forwarded to owner.
    MsgWbiFetchExcl, MSG_WBI_FETCH_EXCL => "msg.wbi.fetch_excl";
    /// WBI fetch (shared) forwarded to owner.
    MsgWbiFetchShared, MSG_WBI_FETCH_SHARED => "msg.wbi.fetch_shared";
    /// WBI invalidation request.
    MsgWbiInv, MSG_WBI_INV => "msg.wbi.inv";
    /// WBI invalidation acknowledgement.
    MsgWbiInvAck, MSG_WBI_INV_ACK => "msg.wbi.inv_ack";
    /// WBI owner-to-requester data transfer.
    MsgWbiOwnerData, MSG_WBI_OWNER_DATA => "msg.wbi.owner_data";
    /// WBI read request.
    MsgWbiReadReq, MSG_WBI_READ_REQ => "msg.wbi.read_req";
    /// WBI write-back race resolution message.
    MsgWbiWbRace, MSG_WBI_WB_RACE => "msg.wbi.wb_race";
    /// WBI write-back to memory.
    MsgWbiWriteBack, MSG_WBI_WRITE_BACK => "msg.wbi.write_back";
    /// WBI write (ownership) request.
    MsgWbiWriteReq, MSG_WBI_WRITE_REQ => "msg.wbi.write_req";
    /// Duplicate delivery suppressed by wire-id dedup.
    NetDedup, NET_DEDUP => "net.dedup";
    /// Private miss fill completed.
    PrivFill, PRIV_FILL => "priv.fill";
    /// Private cache hit.
    PrivHit, PRIV_HIT => "priv.hit";
    /// Private cache miss.
    PrivMiss, PRIV_MISS => "priv.miss";
    /// Private dirty-line writeback.
    PrivWriteback, PRIV_WRITEBACK => "priv.writeback";
    /// Retry budget exhausted for a request.
    RetryExhausted, RETRY_EXHAUSTED => "retry.exhausted";
    /// Timed-out request retransmitted.
    RetryRetransmit, RETRY_RETRANSMIT => "retry.retransmit";
    /// RIC update applied at a list member.
    RicUpdateApplied, RIC_UPDATE_APPLIED => "ric.update_applied";
    /// RIC update dropped (member no longer caching).
    RicUpdateDropped, RIC_UPDATE_DROPPED => "ric.update_dropped";
    /// Semaphore acquired (P granted).
    SemAcquired, SEM_ACQUIRED => "sem.acquired";
    /// Semaphore P issued.
    SemP, SEM_P => "sem.p";
    /// Semaphore V issued.
    SemV, SEM_V => "sem.v";
    /// Shared read served globally (uncached).
    SharedReadGlobal, SHARED_READ_GLOBAL => "shared.read.global";
    /// Shared read hit in cache.
    SharedReadHit, SHARED_READ_HIT => "shared.read.hit";
    /// Shared read missed in cache.
    SharedReadMiss, SHARED_READ_MISS => "shared.read.miss";
    /// Spin iteration on a global location.
    SharedSpinGlobal, SHARED_SPIN_GLOBAL => "shared.spin_global";
    /// Shared write performed globally (uncached).
    SharedWriteGlobal, SHARED_WRITE_GLOBAL => "shared.write.global";
    /// Shared write hit in cache.
    SharedWriteHit, SHARED_WRITE_HIT => "shared.write.hit";
    /// Shared write missed in cache.
    SharedWriteMiss, SHARED_WRITE_MISS => "shared.write.miss";
    /// Watchdog declared a deadlock / budget exhaustion.
    WatchdogFired, WATCHDOG_FIRED => "watchdog.fired";
    /// WBI directory evicted an entry.
    WbiDirEvictions, WBI_DIR_EVICTIONS => "wbi.dir_evictions";
    /// WBI exclusive line downgraded to shared.
    WbiDowngraded, WBI_DOWNGRADED => "wbi.downgraded";
    /// WBI invalidation applied at a cache.
    WbiInvalidated, WBI_INVALIDATED => "wbi.invalidated";
    /// Write-buffer entry acknowledged.
    WbufAcked, WBUF_ACKED => "wbuf.acked";
    /// Processor stalled on a full write buffer.
    WbufFullStall, WBUF_FULL_STALL => "wbuf.full_stall";
    /// Write-buffer entry issued to the network.
    WbufIssued, WBUF_ISSUED => "wbuf.issued";
}

// The touched bitmask below is a u128; the table must fit.
const _: () = assert!(CounterId::COUNT <= 128);

impl CounterId {
    /// The canonical key name for this counter.
    #[inline]
    pub fn name(self) -> &'static str {
        Self::NAMES[self as usize]
    }

    /// Looks a key name up by binary search (the table is sorted).
    pub fn from_name(name: &str) -> Option<CounterId> {
        Self::NAMES
            .binary_search_by(|probe| (**probe).cmp(name))
            .ok()
            .map(|i| Self::ALL[i])
    }
}

/// A set of named monotone counters, stored densely: one `u64` slot per
/// [`CounterId`] plus a bitmask of counters that were ever bumped, so that
/// iteration (and therefore report/JSON output) lists exactly the counters
/// a map-backed store would — in the same sorted order, since variant
/// order equals name order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSet {
    values: [u64; CounterId::COUNT],
    touched: u128,
}

impl Default for CounterSet {
    fn default() -> Self {
        Self {
            values: [0; CounterId::COUNT],
            touched: 0,
        }
    }
}

impl CounterSet {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `id`.
    #[inline]
    pub fn add_id(&mut self, id: CounterId, by: u64) {
        self.values[id as usize] += by;
        self.touched |= 1u128 << (id as u32);
    }

    /// Increments counter `id` by one.
    #[inline]
    pub fn bump_id(&mut self, id: CounterId) {
        self.add_id(id, 1);
    }

    /// Adds `by` to counter `name`.
    ///
    /// # Panics
    /// If `name` is not in the [`keys`] table — bump through the
    /// constants (or [`CounterSet::add_id`]), never ad-hoc strings.
    #[inline]
    pub fn add(&mut self, name: &'static str, by: u64) {
        let id =
            CounterId::from_name(name).unwrap_or_else(|| panic!("unknown counter key '{name}'"));
        self.add_id(id, by);
    }

    /// Increments counter `name` by one (same panics as [`CounterSet::add`]).
    #[inline]
    pub fn bump(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Reads counter `name` (0 if never bumped or unknown).
    pub fn get(&self, name: &str) -> u64 {
        CounterId::from_name(name).map_or(0, |id| self.values[id as usize])
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        CounterId::ALL
            .iter()
            .filter(|id| id.name().starts_with(prefix))
            .map(|&id| self.values[id as usize])
            .sum()
    }

    /// Iterates `(name, value)` pairs of ever-bumped counters in
    /// deterministic (sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        CounterId::ALL
            .iter()
            .filter(move |&&id| self.touched >> (id as u32) & 1 == 1)
            .map(move |&id| (id.name(), self.values[id as usize]))
    }

    /// Merges another counter set into this one (summing matching names).
    pub fn merge(&mut self, other: &CounterSet) {
        self.touched |= other.touched;
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for CounterSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:<40} {v:>14}")?;
        }
        Ok(())
    }
}

/// Streaming min/max/mean/count accumulator.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Accumulator {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator's observations into this one.
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples `x` with `floor(log2(x+1)) == i`, i.e. bucket 0
/// holds `x == 0`, bucket 1 holds `1..=2`, bucket 2 holds `3..=6`, and so on.
/// Good enough for latency distributions at simulator cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: u64) {
        let b = 64 - (x + 1).leading_zeros().min(63) as usize - 1;
        self.buckets[b.min(63)] += 1;
        self.count += 1;
        self.sum += x as u128;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of samples (`None` if empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Approximate quantile: returns the *upper bound* of the bucket in which
    /// the `q`-quantile sample falls. `q` in `[0, 1]`.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                // upper bound of bucket i is 2^(i+1) - 2 (inclusive)
                return Some((1u64 << (i + 1)).saturating_sub(2));
            }
        }
        Some(u64::MAX)
    }

    /// Median bound — see [`Histogram::quantile_bound`] (`None` if empty).
    pub fn p50(&self) -> Option<u64> {
        self.quantile_bound(0.50)
    }

    /// 95th-percentile bound (`None` if empty).
    pub fn p95(&self) -> Option<u64> {
        self.quantile_bound(0.95)
    }

    /// 99th-percentile bound (`None` if empty).
    pub fn p99(&self) -> Option<u64> {
        self.quantile_bound(0.99)
    }

    /// 99.9th-percentile bound (`None` if empty) — the tail-latency
    /// quantile the span layer reports per transaction type.
    pub fn p999(&self) -> Option<u64> {
        self.quantile_bound(0.999)
    }

    /// Raw bucket counts (64 power-of-two buckets).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// Exact nearest-rank quantile over an ascending-sorted slice: the
/// smallest value with at least `ceil(q·n)` observations at or below it.
/// Returns 0 for an empty slice.
///
/// This is the one exact-percentile definition shared by the span layer's
/// per-type latency quantiles and the diff engine's distribution
/// comparison — unlike [`Histogram::quantile_bound`], which returns the
/// power-of-two *bucket upper bound* the quantile sample falls in.
pub fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let mut c = CounterSet::new();
        c.bump(keys::MSG_CBL_REQUEST);
        c.add(keys::MSG_CBL_REQUEST, 2);
        c.bump(keys::MSG_CBL_RELEASE);
        assert_eq!(c.get(keys::MSG_CBL_REQUEST), 3);
        assert_eq!(c.get(keys::MSG_CBL_RELEASE), 1);
        assert_eq!(c.get("absent"), 0);
        assert_eq!(c.sum_prefix(keys::MSG_CBL_PREFIX), 4);
        let listed: Vec<_> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(listed, vec![keys::MSG_CBL_RELEASE, keys::MSG_CBL_REQUEST]);
    }

    #[test]
    fn counters_merge() {
        let mut a = CounterSet::new();
        a.add(keys::PRIV_HIT, 2);
        let mut b = CounterSet::new();
        b.add(keys::PRIV_HIT, 3);
        b.add(keys::PRIV_MISS, 1);
        a.merge(&b);
        assert_eq!(a.get(keys::PRIV_HIT), 5);
        assert_eq!(a.get(keys::PRIV_MISS), 1);
        // merge must not surface counters neither side ever bumped
        assert_eq!(a.iter().count(), 2);
    }

    #[test]
    fn counter_display_lists_all() {
        let mut c = CounterSet::new();
        c.add(keys::WBUF_ISSUED, 1);
        c.add(keys::WBUF_ACKED, 2);
        let s = format!("{c}");
        assert!(s.contains(keys::WBUF_ISSUED) && s.contains(keys::WBUF_ACKED));
    }

    #[test]
    #[should_panic(expected = "unknown counter key")]
    fn bump_of_unknown_key_panics() {
        CounterSet::new().bump("not.a.real.key");
    }

    #[test]
    fn counter_table_is_sorted_and_distinct() {
        // the dense store relies on variant order == sorted name order so
        // iteration matches what the old BTreeMap produced
        assert_eq!(CounterId::ALL.len(), CounterId::COUNT);
        for w in CounterId::ALL.windows(2) {
            assert!(
                w[0].name() < w[1].name(),
                "counters! table out of order: '{}' before '{}'",
                w[0].name(),
                w[1].name()
            );
        }
    }

    #[test]
    fn counter_id_name_roundtrip() {
        for &id in CounterId::ALL {
            assert_eq!(CounterId::from_name(id.name()), Some(id));
            assert_eq!(id.name(), CounterId::ALL[id as usize].name());
        }
        assert_eq!(CounterId::from_name("msg."), None);
        assert_eq!(CounterId::from_name(""), None);
    }

    #[test]
    fn untouched_counters_do_not_iterate() {
        let mut c = CounterSet::new();
        assert_eq!(c.iter().count(), 0);
        c.bump_id(CounterId::NetDedup);
        let listed: Vec<_> = c.iter().collect();
        assert_eq!(listed, vec![(keys::NET_DEDUP, 1)]);
        // name- and id-based bumps hit the same slot
        c.bump(keys::NET_DEDUP);
        assert_eq!(c.get(keys::NET_DEDUP), 2);
    }

    #[test]
    fn accumulator_basic() {
        let mut a = Accumulator::new();
        assert_eq!(a.mean(), None);
        a.record(1.0);
        a.record(3.0);
        a.record(2.0);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(2.0));
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(3.0));
        assert_eq!(a.sum(), 6.0);
    }

    #[test]
    fn histogram_buckets_boundaries() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 1
        h.record(3); // bucket 2
        h.record(6); // bucket 2
        h.record(7); // bucket 3
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        for x in [10, 20, 30] {
            h.record(x);
        }
        assert_eq!(h.mean(), Some(20.0));
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let mut h = Histogram::new();
        for x in 0..1000u64 {
            h.record(x);
        }
        let q50 = h.quantile_bound(0.5).unwrap();
        let q99 = h.quantile_bound(0.99).unwrap();
        assert!(q50 <= q99);
        assert!(q50 >= 499 / 2, "median bound too low: {q50}");
        assert!(h.quantile_bound(0.0).is_some());
    }

    #[test]
    fn histogram_named_percentiles() {
        let mut h = Histogram::new();
        for x in 0..1000u64 {
            h.record(x);
        }
        let (p50, p95, p99) = (h.p50().unwrap(), h.p95().unwrap(), h.p99().unwrap());
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 >= 499, "median bound must cover the true median");
        assert!(p99 >= 989, "p99 bound must cover the true p99");
        assert_eq!(Histogram::new().p95(), None);
    }

    #[test]
    fn keys_are_distinct() {
        let all = [
            keys::MSG_CBL_REQUEST,
            keys::MSG_RIC_UPDATE_PUSH,
            keys::MSG_WBI_INV,
            keys::LOCK_CBL_GRANTED,
            keys::LOCK_TTS_ACQUIRED,
            keys::WBUF_ISSUED,
            keys::RETRY_RETRANSMIT,
            keys::NET_DEDUP,
            keys::WATCHDOG_FIRED,
        ];
        let mut set: Vec<_> = all.to_vec();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), all.len());
        assert!(keys::MSG_CBL_REQUEST.starts_with(keys::MSG_CBL_PREFIX));
        assert!(keys::MSG_WBI_INV.starts_with(keys::MSG_WBI_PREFIX));
    }

    #[test]
    fn accumulator_merge() {
        let mut a = Accumulator::new();
        a.record(1.0);
        let mut b = Accumulator::new();
        b.record(5.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(3.0));
        assert_eq!(a.min(), Some(1.0));
        assert_eq!(a.max(), Some(5.0));
        // merging empty is a no-op
        a.merge(&Accumulator::new());
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), Some(67.0));
    }

    #[test]
    fn histogram_empty_quantile() {
        let h = Histogram::new();
        assert_eq!(h.quantile_bound(0.5), None);
        assert_eq!(h.mean(), None);
    }

    // Percentile edge cases, pinned for every consumer of the two quantile
    // definitions: report summaries (Histogram::quantile_bound — bucket
    // upper bounds) and the span/diff distribution comparison
    // (nearest_rank — exact values).

    #[test]
    fn histogram_single_sample_quantiles() {
        let mut h = Histogram::new();
        h.record(5); // bucket 2 holds 3..=6, upper bound 6
        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile_bound(q), Some(6), "q={q}");
        }
        assert_eq!(h.mean(), Some(5.0));
    }

    #[test]
    fn histogram_all_equal_quantiles() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(7); // bucket 3 holds 7..=14, upper bound 14
        }
        assert_eq!(h.p50(), Some(14));
        assert_eq!(h.p999(), Some(14));
        assert_eq!(h.mean(), Some(7.0));
    }

    #[test]
    fn histogram_zero_sample_lands_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0); // bucket 0 holds exactly x == 0, upper bound 0
        assert_eq!(h.p50(), Some(0));
        assert_eq!(h.quantile_bound(1.0), Some(0));
    }

    #[test]
    fn nearest_rank_empty_is_zero() {
        assert_eq!(nearest_rank(&[], 0.5), 0);
        assert_eq!(nearest_rank(&[], 0.999), 0);
    }

    #[test]
    fn nearest_rank_single_sample_every_quantile() {
        for q in [0.0, 0.5, 0.95, 0.999, 1.0] {
            assert_eq!(nearest_rank(&[42], q), 42, "q={q}");
        }
    }

    #[test]
    fn nearest_rank_all_equal() {
        let xs = [9u64; 50];
        assert_eq!(nearest_rank(&xs, 0.5), 9);
        assert_eq!(nearest_rank(&xs, 0.999), 9);
    }

    #[test]
    fn nearest_rank_exact_semantics_pinned() {
        // smallest value with at least ceil(q·n) observations at or below
        let xs = [1, 2, 3, 4];
        assert_eq!(nearest_rank(&xs, 0.50), 2); // rank ceil(2.0) = 2
        assert_eq!(nearest_rank(&xs, 0.51), 3); // rank ceil(2.04) = 3
        assert_eq!(nearest_rank(&xs, 0.0), 1); // rank clamps to 1
        assert_eq!(nearest_rank(&xs, 1.0), 4);
        assert_eq!(nearest_rank(&[10, 20, 30], 0.999), 30);
    }

    proptest! {
        /// The dense store reports exactly what a sorted map would for any
        /// bump sequence: same keys, same order, same values.
        #[test]
        fn prop_dense_counters_match_sorted_map(
            ops in proptest::collection::vec((0usize..CounterId::COUNT, 1u64..100), 0..100),
        ) {
            let mut dense = CounterSet::new();
            let mut map = std::collections::BTreeMap::<&'static str, u64>::new();
            for (i, by) in ops {
                let id = CounterId::ALL[i];
                dense.add_id(id, by);
                *map.entry(id.name()).or_insert(0) += by;
            }
            let a: Vec<_> = dense.iter().collect();
            let b: Vec<_> = map.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn prop_histogram_count_and_mean(xs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for &x in &xs { h.record(x); }
            prop_assert_eq!(h.count(), xs.len() as u64);
            let mean = xs.iter().copied().map(|x| x as f64).sum::<f64>() / xs.len() as f64;
            prop_assert!((h.mean().unwrap() - mean).abs() < 1e-6);
        }

        #[test]
        fn prop_bucket_monotone_with_value(x in 0u64..u64::MAX/2) {
            // the bucket index for x is <= bucket index for 2x+1
            let mut h1 = Histogram::new();
            h1.record(x);
            let b1 = h1.buckets().iter().position(|&c| c > 0).unwrap();
            let mut h2 = Histogram::new();
            h2.record(2*x + 1);
            let b2 = h2.buckets().iter().position(|&c| c > 0).unwrap();
            prop_assert!(b1 <= b2);
        }
    }
}
