//! Cycle-accurate event tracing.
//!
//! The paper's evaluation reasons about *when* things happen — write-buffer
//! absorption before CP-Synch, RIC update pushes racing readers, CBL queue
//! hand-offs — but aggregate counters only say *how often*. This module
//! records a typed [`TraceEvent`] at every point the machine already bumps
//! a counter, into a bounded [`TraceRing`] and through pluggable
//! [`TraceSink`]s:
//!
//! * [`JsonlSink`] — one JSON object per line, streamed as events occur
//!   (cheap, greppable, machine-validated by `ssmp trace stats`).
//! * [`PerfettoSink`] — Chrome-trace / Perfetto JSON with per-node tracks,
//!   stall duration spans, and message flow events; open the file in
//!   <https://ui.perfetto.dev> or `chrome://tracing`.
//! * [`MemorySink`] — events into a shared `Vec` for tests and tooling.
//!
//! Tracing is **always compiled and zero-cost when off**: a disabled
//! [`Tracer`] reduces `emit` to one branch, and recording never touches
//! simulation state, RNG streams, or event ordering — a traced run's
//! completion time and counters are bit-identical to an untraced run.

use std::cell::RefCell;
use std::fmt;
use std::io::{self, Write};
use std::rc::Rc;

use crate::json::{escape, Json};
use crate::Cycle;

/// Protocol family (or subsystem) an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Family {
    /// Write-back-invalidate coherence (data, lock, and flag blocks).
    Wbi,
    /// Reader-initiated coherence (update lists).
    Ric,
    /// Cache-based queued locks.
    Cbl,
    /// Hardware barrier.
    Bar,
    /// Hardware counting semaphores.
    Sem,
    /// Private-data miss traffic.
    Priv,
    /// Processor-local events (op issue, stalls).
    Node,
    /// Interconnect-level events (faults, dedup).
    Net,
    /// Snooping MESI write-invalidate coherence (data blocks).
    Mesi,
    /// Dragon write-update coherence (data blocks).
    Dragon,
}

impl Family {
    /// All families, in declaration order.
    pub const ALL: [Family; 10] = [
        Family::Wbi,
        Family::Ric,
        Family::Cbl,
        Family::Bar,
        Family::Sem,
        Family::Priv,
        Family::Node,
        Family::Net,
        Family::Mesi,
        Family::Dragon,
    ];

    /// The stable token used in trace files and `--trace-filter`.
    pub fn token(self) -> &'static str {
        match self {
            Family::Wbi => "wbi",
            Family::Ric => "ric",
            Family::Cbl => "cbl",
            Family::Bar => "bar",
            Family::Sem => "sem",
            Family::Priv => "priv",
            Family::Node => "node",
            Family::Net => "net",
            Family::Mesi => "mesi",
            Family::Dragon => "dragon",
        }
    }

    /// Parses a filter/file token.
    pub fn from_token(s: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.token() == s)
    }
}

/// What kind of event occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Kind {
    /// A processor issued an operation.
    Issue,
    /// A protocol message departed onto the interconnect.
    NetInject,
    /// A protocol message was processed at its destination.
    NetDeliver,
    /// A timed-out request was retransmitted.
    Retry,
    /// The fault plan dropped, duplicated, or delayed a message (or a
    /// duplicate was suppressed at delivery).
    Fault,
    /// A processor stalled (detail = cause).
    StallBegin,
    /// A stalled processor resumed (detail = cause).
    StallEnd,
    /// A lock was acquired.
    LockAcquire,
    /// A lock was released.
    LockRelease,
    /// A write-buffer drain completed.
    Flush,
    /// A shared-data access touched a block (detail = access class:
    /// `"read"`, `"read.global"`, `"write"`, `"update.apply"`,
    /// `"invalidate"`; id = block, arg = word). Feeds the per-line
    /// heatmaps and the false-sharing detector.
    Access,
    /// A queue/list membership change (CBL waiter queue, RIC update list,
    /// write-buffer residency; id = lock/block/write id, arg = new depth).
    Queue,
    /// A node retired its final operation (emitted once per node at end of
    /// run; cycle = the node's completion time).
    Done,
    /// A transaction span opened (detail = transaction type: the stall
    /// cause tag, `"wbuf.write"` for buffered global writes, or the op
    /// name for fire-and-forget ops; id = transaction id).
    SpanBegin,
    /// A transaction span closed (detail = transaction type, id =
    /// transaction id, arg = end-to-end duration in cycles).
    SpanEnd,
    /// A causal edge binding a wire to the transaction that caused it
    /// (id = wire id, arg = transaction id). Emitted at injection time,
    /// after the owning `SpanBegin` for request wires and inside the
    /// delivery that triggered the send for replies/forwards.
    Link,
}

impl Kind {
    /// All kinds, in declaration order.
    pub const ALL: [Kind; 16] = [
        Kind::Issue,
        Kind::NetInject,
        Kind::NetDeliver,
        Kind::Retry,
        Kind::Fault,
        Kind::StallBegin,
        Kind::StallEnd,
        Kind::LockAcquire,
        Kind::LockRelease,
        Kind::Flush,
        Kind::Access,
        Kind::Queue,
        Kind::Done,
        Kind::SpanBegin,
        Kind::SpanEnd,
        Kind::Link,
    ];

    /// The stable token used in trace files and `--trace-filter`.
    pub fn token(self) -> &'static str {
        match self {
            Kind::Issue => "issue",
            Kind::NetInject => "net-inject",
            Kind::NetDeliver => "net-deliver",
            Kind::Retry => "retry",
            Kind::Fault => "fault",
            Kind::StallBegin => "stall-begin",
            Kind::StallEnd => "stall-end",
            Kind::LockAcquire => "lock-acquire",
            Kind::LockRelease => "lock-release",
            Kind::Flush => "flush",
            Kind::Access => "access",
            Kind::Queue => "queue",
            Kind::Done => "done",
            Kind::SpanBegin => "span-begin",
            Kind::SpanEnd => "span-end",
            Kind::Link => "link",
        }
    }

    /// Parses a filter/file token.
    pub fn from_token(s: &str) -> Option<Kind> {
        Kind::ALL.into_iter().find(|k| k.token() == s)
    }
}

/// One trace record. All fields are plain values so construction is cheap
/// and the event is `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub cycle: Cycle,
    /// The node the event is attributed to (`-1` = machine-global, e.g. a
    /// directory with no node context).
    pub node: i64,
    /// Protocol family / subsystem.
    pub family: Family,
    /// Event kind.
    pub kind: Kind,
    /// Fine-grained label: the counter key for messages
    /// (`"msg.cbl.request"`), the stall cause (`"fill"`), the fault fate
    /// (`"drop"`), the op name for issues, ...
    pub detail: &'static str,
    /// Primary payload: wire id for message events, lock/block id for
    /// lock events, epoch for retries.
    pub id: u64,
    /// Secondary payload: destination node for message events, attempt
    /// count for retries, stall duration (cycles) for `StallEnd`.
    pub arg: u64,
}

impl TraceEvent {
    /// Renders the event as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"cycle\":{},\"node\":{},\"family\":\"{}\",\"kind\":\"{}\",\"detail\":\"{}\",\"id\":{},\"arg\":{}}}",
            self.cycle,
            self.node,
            self.family.token(),
            self.kind.token(),
            escape(self.detail),
            self.id,
            self.arg
        )
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{} n{} {}/{} {} id={} arg={}",
            self.cycle,
            self.node,
            self.family.token(),
            self.kind.token(),
            self.detail,
            self.id,
            self.arg
        )
    }
}

/// Validates one parsed JSONL trace record against the event schema:
/// required fields present, `family` and `kind` drawn from the known
/// token sets. Used by `ssmp trace stats` (and CI) so the format cannot
/// bit-rot silently.
pub fn validate_jsonl(doc: &Json) -> Result<(), String> {
    for field in ["cycle", "node", "id", "arg"] {
        let v = doc
            .get(field)
            .ok_or_else(|| format!("missing field '{field}'"))?;
        if v.as_f64().is_none() {
            return Err(format!("field '{field}' is not a number"));
        }
    }
    let fam = doc
        .get("family")
        .and_then(|v| v.as_str())
        .ok_or("missing field 'family'")?;
    if Family::from_token(fam).is_none() {
        return Err(format!("unknown family '{fam}'"));
    }
    let kind = doc
        .get("kind")
        .and_then(|v| v.as_str())
        .ok_or("missing field 'kind'")?;
    if Kind::from_token(kind).is_none() {
        return Err(format!("unknown event kind '{kind}'"));
    }
    if doc.get("detail").and_then(|v| v.as_str()).is_none() {
        return Err("missing field 'detail'".into());
    }
    Ok(())
}

/// A parsed trace record with an owned `detail` string — the offline
/// counterpart of [`TraceEvent`] (whose `detail` is `&'static str`), used
/// by consumers that read traces back from JSONL files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedEvent {
    /// Simulation time of the event.
    pub cycle: Cycle,
    /// The node the event is attributed to (`-1` = machine-global).
    pub node: i64,
    /// Protocol family / subsystem.
    pub family: Family,
    /// Event kind.
    pub kind: Kind,
    /// Fine-grained label.
    pub detail: String,
    /// Primary payload.
    pub id: u64,
    /// Secondary payload.
    pub arg: u64,
}

impl From<&TraceEvent> for OwnedEvent {
    fn from(ev: &TraceEvent) -> Self {
        Self {
            cycle: ev.cycle,
            node: ev.node,
            family: ev.family,
            kind: ev.kind,
            detail: ev.detail.to_string(),
            id: ev.id,
            arg: ev.arg,
        }
    }
}

/// Parses one validated JSONL trace record into an [`OwnedEvent`]. Runs
/// [`validate_jsonl`] first, so callers get schema errors and field
/// extraction from one place (`ssmp trace stats --validate` and
/// `ssmp analyze` share this).
pub fn parse_jsonl_event(doc: &Json) -> Result<OwnedEvent, String> {
    validate_jsonl(doc)?;
    let num = |field: &str| doc.get(field).and_then(|v| v.as_f64()).unwrap_or(0.0);
    Ok(OwnedEvent {
        cycle: num("cycle") as Cycle,
        node: num("node") as i64,
        family: Family::from_token(doc.get("family").and_then(|v| v.as_str()).unwrap_or(""))
            .ok_or("unknown family")?,
        kind: Kind::from_token(doc.get("kind").and_then(|v| v.as_str()).unwrap_or(""))
            .ok_or("unknown kind")?,
        detail: doc
            .get("detail")
            .and_then(|v| v.as_str())
            .unwrap_or("")
            .to_string(),
        id: num("id") as u64,
        arg: num("arg") as u64,
    })
}

/// An event filter: `None` sets admit everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceFilter {
    /// Admitted families (`None` = all).
    pub families: Option<Vec<Family>>,
    /// Admitted kinds (`None` = all).
    pub kinds: Option<Vec<Kind>>,
}

impl TraceFilter {
    /// A filter that admits every event.
    pub fn all() -> Self {
        Self::default()
    }

    /// Parses a comma-separated token list mixing family and kind names,
    /// e.g. `"cbl,ric,stall-begin"`. Family tokens restrict families,
    /// kind tokens restrict kinds; an empty/absent spec admits everything.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut f = TraceFilter::all();
        for tok in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(fam) = Family::from_token(tok) {
                f.families.get_or_insert_with(Vec::new).push(fam);
            } else if let Some(kind) = Kind::from_token(tok) {
                f.kinds.get_or_insert_with(Vec::new).push(kind);
            } else {
                let families: Vec<_> = Family::ALL.iter().map(|x| x.token()).collect();
                let kinds: Vec<_> = Kind::ALL.iter().map(|x| x.token()).collect();
                return Err(format!(
                    "unknown trace filter token '{tok}' (families: {}; kinds: {})",
                    families.join("|"),
                    kinds.join("|")
                ));
            }
        }
        Ok(f)
    }

    /// Whether the filter admits an event.
    #[inline]
    pub fn admits(&self, ev: &TraceEvent) -> bool {
        if let Some(fams) = &self.families {
            if !fams.contains(&ev.family) {
                return false;
            }
        }
        if let Some(kinds) = &self.kinds {
            if !kinds.contains(&ev.kind) {
                return false;
            }
        }
        true
    }
}

/// A bounded ring of the most recent events (deadlock forensics).
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Next write position; wraps at `cap`.
    head: usize,
    /// Total events ever recorded (so `len` is `total.min(cap)`).
    total: u64,
}

impl TraceRing {
    /// A ring holding the last `cap` events (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            total: 0,
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
        }
        self.head = (self.head + 1) % self.cap;
        self.total += 1;
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The held events in chronological (recording) order.
    pub fn in_order(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }

    /// The last `k` events attributed to `node`, oldest first.
    pub fn recent_for_node(&self, node: i64, k: usize) -> Vec<TraceEvent> {
        let all = self.in_order();
        let mut out: Vec<TraceEvent> = all.into_iter().filter(|e| e.node == node).collect();
        if out.len() > k {
            out.drain(..out.len() - k);
        }
        out
    }
}

/// A destination for admitted trace events.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, ev: &TraceEvent);
    /// Flushes / finalizes the sink (called once, at end of run).
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Streams events as JSON Lines.
pub struct JsonlSink<W: Write> {
    out: W,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing one JSON object per line to `out`.
    pub fn new(out: W) -> Self {
        Self { out, error: None }
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.out, "{}", ev.to_jsonl()) {
            self.error = Some(e);
        }
    }

    fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// Buffers events and writes a Chrome-trace / Perfetto JSON document at
/// the end of the run.
pub struct PerfettoSink<W: Write> {
    out: W,
    events: Vec<TraceEvent>,
}

impl<W: Write> PerfettoSink<W> {
    /// A sink writing the full Chrome-trace document to `out` on finish.
    pub fn new(out: W) -> Self {
        Self {
            out,
            events: Vec::new(),
        }
    }
}

impl<W: Write> TraceSink for PerfettoSink<W> {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.push(*ev);
    }

    fn finish(&mut self) -> io::Result<()> {
        let doc = render_chrome_trace(&self.events);
        self.out.write_all(doc.as_bytes())?;
        self.out.flush()
    }
}

/// Renders events as a Chrome-trace JSON document (the format Perfetto and
/// `chrome://tracing` load):
///
/// * one track (tid) per node, named via `thread_name` metadata;
/// * `StallBegin`/`StallEnd` pairs become `"X"` duration spans;
/// * `NetInject`/`NetDeliver` pairs (matched by wire id) become `"s"`/`"f"`
///   flow events bracketing instant events, so Perfetto draws message
///   arrows between node tracks;
/// * every other event is an `"i"` instant on its node's track.
///
/// Timestamps are in simulated cache cycles (1 cycle = 1 "µs" on the
/// Chrome-trace timeline).
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let tid = |node: i64| node + 2; // tid 1 = "machine" track for node -1
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"ssmp\"}}",
    );
    let mut nodes: Vec<i64> = events.iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for &n in &nodes {
        let name = if n < 0 {
            "machine".to_string()
        } else {
            format!("node {n}")
        };
        out.push_str(&format!(
            ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            tid(n),
            name
        ));
        out.push_str(&format!(
            ",{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"sort_index\":{}}}}}",
            tid(n),
            n
        ));
    }
    // Open stall per node → matched into X spans.
    let mut open_stall: std::collections::BTreeMap<i64, TraceEvent> = Default::default();
    let push = |s: &mut String, frag: String| {
        s.push(',');
        s.push_str(&frag);
    };
    for ev in events {
        let args = format!(
            "{{\"detail\":\"{}\",\"id\":{},\"arg\":{}}}",
            escape(ev.detail),
            ev.id,
            ev.arg
        );
        match ev.kind {
            Kind::StallBegin => {
                open_stall.insert(ev.node, *ev);
            }
            Kind::StallEnd => {
                let start = open_stall.remove(&ev.node).map_or(ev.cycle, |b| b.cycle);
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"stall:{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\
                         \"dur\":{},\"pid\":0,\"tid\":{},\"args\":{}}}",
                        escape(ev.detail),
                        ev.family.token(),
                        start,
                        ev.cycle.saturating_sub(start).max(1),
                        tid(ev.node),
                        args
                    ),
                );
            }
            Kind::NetInject | Kind::NetDeliver => {
                let (ph, bp) = if ev.kind == Kind::NetInject {
                    ("s", "")
                } else {
                    ("f", ",\"bp\":\"e\"")
                };
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\
                         \"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{}}}",
                        escape(ev.detail),
                        ev.family.token(),
                        ev.cycle,
                        tid(ev.node),
                        args
                    ),
                );
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\"{},\"id\":{},\
                         \"ts\":{},\"pid\":0,\"tid\":{}}}",
                        escape(ev.detail),
                        ev.family.token(),
                        ph,
                        bp,
                        ev.id,
                        ev.cycle,
                        tid(ev.node)
                    ),
                );
            }
            _ => {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{}:{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\
                         \"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{}}}",
                        ev.kind.token(),
                        escape(ev.detail),
                        ev.family.token(),
                        ev.cycle,
                        tid(ev.node),
                        args
                    ),
                );
            }
        }
    }
    // Close any stall still open at end of trace as a zero-length span.
    for (node, b) in open_stall {
        push(
            &mut out,
            format!(
                "{{\"name\":\"stall:{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\
                 \"dur\":1,\"pid\":0,\"tid\":{},\"args\":{{\"detail\":\"unfinished\"}}}}",
                escape(b.detail),
                b.family.token(),
                b.cycle,
                tid(node)
            ),
        );
    }
    out.push_str("]}");
    out
}

/// Shared event store for [`MemorySink`].
pub type SharedEvents = Rc<RefCell<Vec<TraceEvent>>>;

/// Collects events into a shared in-memory vector (tests, tooling, and
/// the interval-metrics layer).
#[derive(Debug, Default)]
pub struct MemorySink {
    events: SharedEvents,
}

impl MemorySink {
    /// Creates a sink plus the shared handle to read events back after the
    /// run (the machine consumes the sink itself).
    pub fn new() -> (Self, SharedEvents) {
        let events: SharedEvents = Rc::new(RefCell::new(Vec::new()));
        (
            Self {
                events: events.clone(),
            },
            events,
        )
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, ev: &TraceEvent) {
        self.events.borrow_mut().push(*ev);
    }
}

/// The tracing handle threaded through the machine. Disabled by default;
/// `emit` on a disabled tracer is a single branch.
pub struct Tracer {
    on: bool,
    filter: TraceFilter,
    ring: TraceRing,
    sinks: Vec<Box<dyn TraceSink>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::off()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("on", &self.on)
            .field("filter", &self.filter)
            .field("ring_len", &self.ring.len())
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Tracer {
    /// Default ring capacity (deadlock forensics window).
    pub const DEFAULT_RING: usize = 256;

    /// A disabled tracer: `emit` is a no-op.
    pub fn off() -> Self {
        Self {
            on: false,
            filter: TraceFilter::all(),
            ring: TraceRing::new(1),
            sinks: Vec::new(),
        }
    }

    /// An enabled tracer with the given filter and the default ring.
    pub fn new(filter: TraceFilter) -> Self {
        Self {
            on: true,
            filter,
            ring: TraceRing::new(Self::DEFAULT_RING),
            sinks: Vec::new(),
        }
    }

    /// Replaces the ring capacity.
    pub fn with_ring(mut self, cap: usize) -> Self {
        self.ring = TraceRing::new(cap);
        self
    }

    /// Attaches a sink.
    pub fn add_sink(&mut self, sink: impl TraceSink + 'static) {
        self.sinks.push(Box::new(sink));
    }

    /// Whether events are being recorded. Call before constructing an
    /// event so a disabled tracer costs one branch.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// Records one event (if enabled and admitted by the filter).
    #[inline]
    pub fn emit(&mut self, ev: TraceEvent) {
        if !self.on || !self.filter.admits(&ev) {
            return;
        }
        self.ring.record(ev);
        for s in &mut self.sinks {
            s.record(&ev);
        }
    }

    /// The last `k` recorded events attributed to `node`, oldest first.
    pub fn recent_for_node(&self, node: i64, k: usize) -> Vec<TraceEvent> {
        self.ring.recent_for_node(node, k)
    }

    /// Total events recorded (post-filter).
    pub fn recorded(&self) -> u64 {
        self.ring.total()
    }

    /// Finalizes every sink, returning the first error.
    pub fn finish(&mut self) -> io::Result<()> {
        let mut first: Option<io::Error> = None;
        for s in &mut self.sinks {
            if let Err(e) = s.finish() {
                first.get_or_insert(e);
            }
        }
        match first {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: Cycle, node: i64, kind: Kind) -> TraceEvent {
        TraceEvent {
            cycle,
            node,
            family: Family::Cbl,
            kind,
            detail: "msg.cbl.request",
            id: cycle,
            arg: 0,
        }
    }

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let mut r = TraceRing::new(4);
        for i in 0..10 {
            r.record(ev(i, 0, Kind::NetInject));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 10);
        let cycles: Vec<Cycle> = r.in_order().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_partial_fill_is_in_order() {
        let mut r = TraceRing::new(8);
        for i in 0..3 {
            r.record(ev(i, 0, Kind::Issue));
        }
        let cycles: Vec<Cycle> = r.in_order().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
    }

    #[test]
    fn ring_recent_for_node_filters_and_caps() {
        let mut r = TraceRing::new(16);
        for i in 0..12 {
            r.record(ev(i, (i % 2) as i64, Kind::NetDeliver));
        }
        let n1 = r.recent_for_node(1, 3);
        let cycles: Vec<Cycle> = n1.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 9, 11]);
        assert!(r.recent_for_node(5, 3).is_empty());
    }

    #[test]
    fn filter_parses_and_admits() {
        let f = TraceFilter::parse("cbl, stall-begin ,stall-end").unwrap();
        let mut e = ev(1, 0, Kind::StallBegin);
        assert!(f.admits(&e));
        e.kind = Kind::NetInject;
        assert!(!f.admits(&e), "kind not in filter");
        e.kind = Kind::StallEnd;
        e.family = Family::Ric;
        assert!(!f.admits(&e), "family not in filter");
        assert!(TraceFilter::all().admits(&e));
        assert!(TraceFilter::parse("bogus").is_err());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::off();
        t.emit(ev(1, 0, Kind::Issue));
        assert_eq!(t.recorded(), 0);
        assert!(!t.is_on());
    }

    #[test]
    fn tracer_filters_into_ring_and_sinks() {
        let (sink, events) = MemorySink::new();
        let mut t = Tracer::new(TraceFilter::parse("net-inject").unwrap());
        t.add_sink(sink);
        t.emit(ev(1, 0, Kind::NetInject));
        t.emit(ev(2, 0, Kind::Issue)); // filtered out
        t.emit(ev(3, 1, Kind::NetInject));
        assert_eq!(t.recorded(), 2);
        assert_eq!(events.borrow().len(), 2);
        assert_eq!(t.recent_for_node(1, 8).len(), 1);
        t.finish().unwrap();
    }

    #[test]
    fn jsonl_lines_validate() {
        let mut buf = Vec::new();
        {
            let mut s = JsonlSink::new(&mut buf);
            s.record(&ev(7, 2, Kind::NetInject));
            s.record(&ev(9, -1, Kind::Fault));
            s.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        for line in text.lines() {
            let doc = Json::parse(line).unwrap();
            validate_jsonl(&doc).unwrap();
        }
    }

    #[test]
    fn validate_rejects_unknown_kind() {
        let doc = Json::parse(
            r#"{"cycle":1,"node":0,"family":"cbl","kind":"frob","detail":"x","id":0,"arg":0}"#,
        )
        .unwrap();
        assert!(validate_jsonl(&doc).unwrap_err().contains("unknown event"));
        let doc = Json::parse(r#"{"cycle":1}"#).unwrap();
        assert!(validate_jsonl(&doc).is_err());
    }

    #[test]
    fn chrome_trace_is_valid_json_with_spans_and_flows() {
        let events = vec![
            TraceEvent {
                cycle: 5,
                node: 0,
                family: Family::Node,
                kind: Kind::StallBegin,
                detail: "fill",
                id: 0,
                arg: 0,
            },
            ev(6, 0, Kind::NetInject),
            ev(9, 1, Kind::NetDeliver),
            TraceEvent {
                cycle: 12,
                node: 0,
                family: Family::Node,
                kind: Kind::StallEnd,
                detail: "fill",
                id: 0,
                arg: 7,
            },
        ];
        let doc = render_chrome_trace(&events);
        let v = Json::parse(&doc).expect("chrome trace must be valid JSON");
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        let ph = |p: &str| {
            evs.iter()
                .filter(|e| e.get("ph").and_then(|x| x.as_str()) == Some(p))
                .count()
        };
        assert!(ph("M") >= 3, "metadata for process + two node tracks");
        assert_eq!(ph("X"), 1, "one stall span");
        assert_eq!(ph("s"), 1, "one flow start");
        assert_eq!(ph("f"), 1, "one flow finish");
        let span = evs
            .iter()
            .find(|e| e.get("ph").and_then(|x| x.as_str()) == Some("X"))
            .unwrap();
        assert_eq!(span.get("ts").unwrap().as_u64(), Some(5));
        assert_eq!(span.get("dur").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn chrome_trace_closes_unfinished_stalls() {
        let events = vec![TraceEvent {
            cycle: 3,
            node: 2,
            family: Family::Node,
            kind: Kind::StallBegin,
            detail: "lock",
            id: 0,
            arg: 0,
        }];
        let doc = render_chrome_trace(&events);
        let v = Json::parse(&doc).unwrap();
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(evs
            .iter()
            .any(|e| e.get("ph").and_then(|x| x.as_str()) == Some("X")));
    }

    #[test]
    fn parse_jsonl_event_roundtrips() {
        let orig = TraceEvent {
            cycle: 42,
            node: -1,
            family: Family::Ric,
            kind: Kind::Access,
            detail: "write",
            id: 7,
            arg: 3,
        };
        let doc = Json::parse(&orig.to_jsonl()).unwrap();
        let parsed = parse_jsonl_event(&doc).unwrap();
        assert_eq!(parsed, OwnedEvent::from(&orig));
        let bad = Json::parse(r#"{"cycle":1}"#).unwrap();
        assert!(parse_jsonl_event(&bad).is_err());
    }

    #[test]
    fn tokens_roundtrip() {
        for f in Family::ALL {
            assert_eq!(Family::from_token(f.token()), Some(f));
        }
        for k in Kind::ALL {
            assert_eq!(Kind::from_token(k.token()), Some(k));
        }
        assert_eq!(Family::from_token("nope"), None);
        assert_eq!(Kind::from_token("nope"), None);
    }
}
