//! Interval time-series metrics.
//!
//! End-of-run aggregates hide transients: a write buffer that is empty on
//! average can still be full exactly when CP-Synch needs it drained, and a
//! CBL queue that is short at completion may have been long during the
//! critical-section storm the paper's Fig. 6 studies. An [`IntervalSeries`]
//! holds periodic samples of machine gauges (network occupancy, write-buffer
//! depth, CBL queue lengths, RIC list sizes, per-cause stall counts) taken
//! every `interval` cycles, so a `Report` can show *trajectories* as well as
//! totals.
//!
//! Sampling is driven lazily by the simulation loop (checked against the
//! timestamp of each dispatched event) rather than by scheduled events, so
//! it can never keep the event queue artificially non-empty — which would
//! defeat the watchdog's quiescence detection — and never perturbs event
//! order.

use std::fmt;

use crate::json::Json;
use crate::Cycle;

/// A fixed-column time series sampled every `interval` cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSeries {
    interval: Cycle,
    columns: Vec<&'static str>,
    /// `(sample cycle, one value per column)`.
    rows: Vec<(Cycle, Vec<u64>)>,
}

impl IntervalSeries {
    /// Creates an empty series with the given sampling interval and column
    /// names.
    pub fn new(interval: Cycle, columns: Vec<&'static str>) -> Self {
        Self {
            interval: interval.max(1),
            columns,
            rows: Vec::new(),
        }
    }

    /// The sampling interval, in cycles.
    pub fn interval(&self) -> Cycle {
        self.interval
    }

    /// Column names, in row order.
    pub fn columns(&self) -> &[&'static str] {
        &self.columns
    }

    /// Appends one sample row. `values` must have one entry per column.
    pub fn push(&mut self, at: Cycle, values: Vec<u64>) {
        debug_assert_eq!(values.len(), self.columns.len());
        self.rows.push((at, values));
    }

    /// Number of samples taken.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw sample rows.
    pub fn rows(&self) -> &[(Cycle, Vec<u64>)] {
        &self.rows
    }

    /// All samples of one column (by name), in time order.
    pub fn column(&self, name: &str) -> Option<Vec<u64>> {
        let i = self.columns.iter().position(|&c| c == name)?;
        Some(self.rows.iter().map(|(_, vs)| vs[i]).collect())
    }

    /// Maximum sampled value of one column (`None` if empty or unknown).
    pub fn peak(&self, name: &str) -> Option<u64> {
        self.column(name)?.into_iter().max()
    }

    /// Serializes as `{"interval": N, "columns": [...], "samples":
    /// [[cycle, v0, v1, ...], ...]}`.
    pub fn to_json(&self) -> Json {
        let columns = Json::Arr(self.columns.iter().map(|&c| Json::str(c)).collect());
        let samples = Json::Arr(
            self.rows
                .iter()
                .map(|(at, vs)| {
                    let mut row = Vec::with_capacity(vs.len() + 1);
                    row.push(Json::num(at));
                    row.extend(vs.iter().map(Json::num));
                    Json::Arr(row)
                })
                .collect(),
        );
        Json::Obj(vec![
            ("interval".into(), Json::num(self.interval)),
            ("columns".into(), columns),
            ("samples".into(), samples),
        ])
    }
}

impl fmt::Display for IntervalSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "interval series: {} samples every {} cycles",
            self.rows.len(),
            self.interval
        )?;
        write!(f, "{:>10}", "cycle")?;
        for c in &self.columns {
            write!(f, " {c:>18}")?;
        }
        writeln!(f)?;
        for (at, vs) in &self.rows {
            write!(f, "{at:>10}")?;
            for v in vs {
                write!(f, " {v:>18}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IntervalSeries {
        let mut s = IntervalSeries::new(100, vec!["net.packets", "wbuf.depth"]);
        s.push(100, vec![3, 1]);
        s.push(200, vec![5, 0]);
        s.push(300, vec![2, 4]);
        s
    }

    #[test]
    fn columns_and_peaks() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.interval(), 100);
        assert_eq!(s.column("wbuf.depth"), Some(vec![1, 0, 4]));
        assert_eq!(s.peak("wbuf.depth"), Some(4));
        assert_eq!(s.peak("net.packets"), Some(5));
        assert_eq!(s.column("nope"), None);
    }

    #[test]
    fn json_roundtrips_shape() {
        let s = sample();
        let j = s.to_json();
        let text = j.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("interval").unwrap().as_u64(), Some(100));
        let cols = back.get("columns").unwrap().as_array().unwrap();
        assert_eq!(cols.len(), 2);
        let rows = back.get("samples").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 3);
        let first = rows[0].as_array().unwrap();
        assert_eq!(first[0].as_u64(), Some(100));
        assert_eq!(first[1].as_u64(), Some(3));
    }

    #[test]
    fn display_mentions_columns() {
        let s = sample();
        let text = format!("{s}");
        assert!(text.contains("net.packets"));
        assert!(text.contains("wbuf.depth"));
    }

    #[test]
    fn zero_interval_clamped() {
        let s = IntervalSeries::new(0, vec!["x"]);
        assert_eq!(s.interval(), 1);
        assert!(s.is_empty());
    }
}
