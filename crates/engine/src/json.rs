//! Minimal JSON document model: compact emit and a recursive-descent
//! parser.
//!
//! The workspace builds offline (no serde/serde_json), but a handful of
//! places exchange structured data — captured traces, report dumps, bench
//! result tables. This module covers exactly that: a [`Json`] value tree,
//! [`Json::parse`], and [`Json::render`]. Numbers are kept as their raw
//! token text so `u64` counters round-trip without `f64` precision loss.

use std::fmt;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, stored as its raw token text (e.g. `"42"`, `"-1.5e3"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Escapes a string for embedding inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Json {
    /// Builds a number value from any displayable numeric.
    pub fn num(v: impl fmt::Display) -> Json {
        Json::Num(v.to_string())
    }

    /// Builds a string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (must be a single value plus whitespace).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if tok.parse::<f64>().is_err() {
            self.pos = start;
            return Err(self.err(format!("bad number '{tok}'")));
        }
        Ok(Json::Num(tok.to_string()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair support for completeness.
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("bad \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the raw bytes: step back and take
                    // the full character.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let src = r#"{"a":[1,2.5,-3e2],"b":{"s":"hi\n\"there\"","t":true,"n":null}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("b").unwrap().get("s").unwrap().as_str(),
            Some("hi\n\"there\"")
        );
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn big_u64_counters_do_not_lose_precision() {
        let n = u64::MAX - 1;
        let v = Json::parse(&Json::num(n).render()).unwrap();
        assert_eq!(v.as_u64(), Some(n));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse(r#""unterminated"#).is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn unicode_escapes() {
        // Raw multi-byte UTF-8 passes through.
        let v = Json::parse("\"caf\u{e9}\"").unwrap();
        assert_eq!(v.as_str(), Some("café"));
        // \u escapes, including a surrogate pair (U+1F600).
        let v = Json::parse("\"\\u0041\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v.as_str(), Some("A\u{1f600}"));
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"k\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 2);
    }
}
