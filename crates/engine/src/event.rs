//! Time-ordered event queue with deterministic FIFO tie-breaking.
//!
//! The queue is the heart of the simulator: every hardware component
//! (processor, cache, write buffer, memory module, network switch) advances
//! by scheduling events for future cycles. Determinism requires that events
//! scheduled for the *same* cycle pop in insertion order; a plain
//! `BinaryHeap<(Cycle, E)>` would instead break ties on the payload's `Ord`,
//! which is both semantically wrong and a subtle source of irreproducibility.
//! We therefore pair every event with a monotonically increasing sequence
//! number.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// An event together with the cycle at which it fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// Cycle at which the event fires.
    pub at: Cycle,
    /// Insertion sequence number; breaks ties among events at the same cycle.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

// The heap is a max-heap, so order is reversed: the *smallest* (at, seq)
// must compare greatest.
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}

impl<E> Eq for HeapEntry<E> {}

#[derive(Debug)]
struct HeapEntry<E>(Scheduled<E>);

/// A deterministic discrete-event queue.
///
/// Events pop in nondecreasing `at` order; events with equal `at` pop in the
/// order they were pushed. Popping an event advances [`EventQueue::now`] to
/// the event's cycle; scheduling an event in the past is a logic error and
/// panics in debug builds (it is clamped to `now` in release builds, which
/// keeps long experiment sweeps alive while still surfacing the bug under
/// `cargo test`).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    now: Cycle,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at cycle 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            next_seq: 0,
            popped: 0,
        }
    }

    /// The current simulation time: the cycle of the most recently popped
    /// event (0 before any pop).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of events popped so far.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at cycle `at`.
    ///
    /// `at` must be `>= now()`.
    pub fn schedule(&mut self, at: Cycle, event: E) {
        debug_assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Scheduled { at, seq, event }));
    }

    /// Schedules `event` to fire `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Pops the next event, advancing the clock to its cycle.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let entry = self.heap.pop()?;
        self.now = entry.0.at;
        self.popped += 1;
        Some(entry.0)
    }

    /// The cycle of the next pending event, if any.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.0.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop().unwrap().event, "a");
        assert_eq!(q.now(), 10);
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.pop().unwrap().event, "c");
        assert_eq!(q.now(), 30);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_within_same_cycle() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(7, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(5, 0u32);
        q.pop();
        q.schedule_in(3, 1u32);
        let e = q.pop().unwrap();
        assert_eq!(e.at, 8);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(1, 'a');
        q.schedule(4, 'd');
        assert_eq!(q.pop().unwrap().event, 'a');
        // scheduled after 'd' but earlier in time
        q.schedule(2, 'b');
        q.schedule(2, 'c');
        assert_eq!(q.pop().unwrap().event, 'b');
        assert_eq!(q.pop().unwrap().event, 'c');
        assert_eq!(q.pop().unwrap().event, 'd');
    }

    #[test]
    fn len_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.popped(), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(2));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    proptest! {
        /// Events always pop in nondecreasing time, and FIFO within a time.
        #[test]
        fn prop_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            let mut max_t = 0;
            for (i, &t) in times.iter().enumerate() {
                // keep schedules legal (>= now == 0 since we pop at the end)
                q.schedule(t, i);
                max_t = max_t.max(t);
            }
            let mut last: Option<(u64, usize)> = None;
            while let Some(s) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(s.at >= lt);
                    if s.at == lt {
                        prop_assert!(s.event > li, "FIFO violated within cycle {}", s.at);
                    }
                }
                last = Some((s.at, s.event));
            }
            prop_assert_eq!(q.now(), max_t);
        }

        /// now() never decreases across arbitrary interleavings.
        #[test]
        fn prop_clock_monotone(ops in proptest::collection::vec(0u64..50, 1..100)) {
            let mut q = EventQueue::new();
            let mut prev_now = 0;
            for &d in &ops {
                if d % 3 == 0 {
                    q.pop();
                } else {
                    q.schedule_in(d, d);
                }
                prop_assert!(q.now() >= prev_now);
                prev_now = q.now();
            }
        }
    }
}
