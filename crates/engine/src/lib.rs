//! # ssmp-engine
//!
//! Deterministic discrete-event simulation (DES) kernel used by every other
//! crate in the `ssmp` workspace.
//!
//! The kernel is deliberately small and completely deterministic:
//!
//! * [`EventQueue`] — a time-ordered priority queue with FIFO tie-breaking,
//!   so two events scheduled for the same cycle always pop in the order they
//!   were pushed. This is what makes whole-machine simulations bit-for-bit
//!   reproducible from a seed.
//! * [`SimRng`] — a sealed xoshiro256++ pseudo-random generator (seeded via
//!   splitmix64) with the handful of distributions the workload models need.
//!   We implement it here rather than depending on an external crate so that
//!   a given seed produces the same reference stream forever, independent of
//!   dependency upgrades.
//! * [`stats`] — cheap counters, accumulators and power-of-two histograms
//!   used for the paper's metrics (completion time, message counts, lock
//!   wait times, ...).
//!
//! Time is measured in **cache cycles** ([`Cycle`]), matching the paper's
//! Table 4 parameterisation (e.g. "main memory cycle time = 4 cache cycles").

//! # Example
//!
//! ```
//! use ssmp_engine::{EventQueue, SimRng};
//!
//! let mut q = EventQueue::new();
//! q.schedule(10, "fetch");
//! q.schedule(5, "decode");
//! assert_eq!(q.pop().unwrap().event, "decode");
//! assert_eq!(q.now(), 5);
//!
//! let mut rng = SimRng::new(42);
//! assert!(rng.below(10) < 10);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod rng;
pub mod series;
pub mod stats;
pub mod trace;
pub mod watchdog;
pub mod wheel;

pub use event::{EventQueue, Scheduled};
pub use json::{Json, JsonError};
pub use rng::SimRng;
pub use series::IntervalSeries;
pub use stats::{Accumulator, CounterId, CounterSet, Histogram};
pub use trace::{
    Family, JsonlSink, Kind, MemorySink, OwnedEvent, PerfettoSink, TraceEvent, TraceFilter,
    TraceRing, TraceSink, Tracer,
};
pub use watchdog::{Watchdog, WatchdogVerdict};
pub use wheel::WheelQueue;

/// Simulation time, in cache cycles.
pub type Cycle = u64;
