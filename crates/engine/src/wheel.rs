//! A timing-wheel event queue — the classic DES alternative to a binary
//! heap (cf. calendar queues, Brown 1988).
//!
//! Events within the wheel's horizon go into `buckets[time & mask]`; events
//! beyond it wait in an overflow map that is drained as the wheel turns.
//! Pop order is identical to [`crate::EventQueue`]: nondecreasing time,
//! FIFO among equal times — verified by an equivalence property test.
//!
//! The hot path is kept O(1)-ish per operation:
//!
//! * slot count is rounded up to a power of two so the slot index is a
//!   bitmask, not a modulo;
//! * a per-slot **occupancy bitmap** lets the cursor jump straight to the
//!   next non-empty slot of the current turn instead of stepping cycle by
//!   cycle;
//! * an **in-wheel counter** answers "is the wheel empty" without scanning
//!   the buckets;
//! * the earliest overflow time is cached, so the overflow map is only
//!   touched at refill boundaries;
//! * refills drain a prefix of the overflow map in place (overflow keys
//!   are always beyond every bucketed time, so no allocation is needed).
//!
//! The wheel wins when event times are dense and near the current time
//! (the common case for a machine simulator, where most events are a few
//! cycles out); the heap wins on sparse, long-horizon schedules. The
//! `micro` criterion bench compares both under simulator-like load.

use std::collections::{BTreeMap, VecDeque};

use crate::event::Scheduled;
use crate::Cycle;

/// Sentinel for "overflow map is empty".
const NO_OVERFLOW: Cycle = Cycle::MAX;

/// A timing-wheel event queue with heap-identical ordering semantics.
#[derive(Debug)]
pub struct WheelQueue<E> {
    /// `buckets[t & mask]` holds events with `t` within the horizon, in
    /// insertion order (same-time FIFO comes for free).
    buckets: Vec<VecDeque<Scheduled<E>>>,
    /// Bit `i` set ⇔ `buckets[i]` is non-empty.
    occupied: Vec<u64>,
    /// Bit `i` set ⇔ a refill appended to a non-empty `buckets[i]`, so
    /// its entries may be out of seq order and pops must scan for the
    /// minimum; cleared when the bucket drains.
    dirty: Vec<u64>,
    /// Events beyond the horizon, keyed by `(time, seq)`.
    overflow: BTreeMap<(Cycle, u64), E>,
    /// Earliest overflow time ([`NO_OVERFLOW`] when the map is empty).
    next_overflow: Cycle,
    /// Events currently sitting in the buckets (not in overflow).
    in_wheel: usize,
    /// `slots - 1`; slots is a power of two.
    mask: Cycle,
    /// Current time (last popped).
    now: Cycle,
    /// Next wheel slot to inspect (time, not index).
    cursor: Cycle,
    next_seq: u64,
    len: usize,
    popped: u64,
}

impl<E> WheelQueue<E> {
    /// Creates a wheel with at least `slots` one-cycle buckets of horizon
    /// (rounded up to the next power of two).
    pub fn new(slots: usize) -> Self {
        assert!(slots >= 2);
        let slots = slots.next_power_of_two();
        Self {
            buckets: (0..slots).map(|_| VecDeque::new()).collect(),
            occupied: vec![0u64; slots.div_ceil(64)],
            dirty: vec![0u64; slots.div_ceil(64)],
            overflow: BTreeMap::new(),
            next_overflow: NO_OVERFLOW,
            in_wheel: 0,
            mask: (slots - 1) as Cycle,
            now: 0,
            cursor: 0,
            next_seq: 0,
            len: 0,
            popped: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events popped so far.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    fn horizon(&self) -> Cycle {
        self.mask + 1
    }

    /// Appends to a bucket. Direct schedules always append in increasing
    /// seq order; a refill (`mark_dirty`) may not, in which case the
    /// bucket is flagged so pops fall back to a full min-seq scan.
    #[inline]
    fn push_bucket(&mut self, at: Cycle, seq: u64, event: E, mark_dirty: bool) {
        let idx = (at & self.mask) as usize;
        if mark_dirty && !self.buckets[idx].is_empty() {
            self.dirty[idx >> 6] |= 1u64 << (idx & 63);
        }
        self.buckets[idx].push_back(Scheduled { at, seq, event });
        self.occupied[idx >> 6] |= 1u64 << (idx & 63);
        self.in_wheel += 1;
    }

    /// Schedules `event` at cycle `at` (must be `>= now()`).
    pub fn schedule(&mut self, at: Cycle, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        if at < self.cursor {
            // A peek fast-forwarded the cursor past `at` (still >= now):
            // rewind so the slot scan visits this time again. Bucketed
            // events beyond the horizon are harmless — the pop filter
            // only takes events whose time equals the cursor.
            self.cursor = at;
        }
        if at - self.cursor < self.horizon() {
            self.push_bucket(at, seq, event, false);
        } else {
            self.overflow.insert((at, seq), event);
            self.next_overflow = self.next_overflow.min(at);
        }
        self.len += 1;
    }

    /// Schedules `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Pops the next event (time order, FIFO within a cycle).
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.len == 0 {
            return None;
        }
        loop {
            // (a) the wheel slot for the cursor time
            let idx = (self.cursor & self.mask) as usize;
            if self.occupied[idx >> 6] & (1u64 << (idx & 63)) != 0 {
                if let Some(ev) = self.take_from_bucket(idx) {
                    self.len -= 1;
                    self.popped += 1;
                    self.now = ev.at;
                    return Some(ev);
                }
            }
            // (b) overflow events exactly at the cursor (defensive: refill
            // normally moves them into the wheel before the cursor arrives)
            if self.next_overflow == self.cursor {
                let ((at, seq), event) = self.overflow.pop_first().expect("cached key exists");
                self.next_overflow = self
                    .overflow
                    .first_key_value()
                    .map_or(NO_OVERFLOW, |(&(t, _), _)| t);
                self.len -= 1;
                self.popped += 1;
                self.now = at;
                return Some(Scheduled { at, seq, event });
            }
            self.advance();
        }
    }

    /// Time of the next event without popping it (`None` when empty).
    ///
    /// Finding the next event may rotate the cursor across empty slots
    /// (refilling from overflow at horizon boundaries), so this takes
    /// `&mut self`; the queue's contents and pop order are unchanged.
    /// Mirrors the scan in [`WheelQueue::pop`].
    pub fn peek_time(&mut self) -> Option<Cycle> {
        if self.len == 0 {
            return None;
        }
        loop {
            let idx = (self.cursor & self.mask) as usize;
            if self.occupied[idx >> 6] & (1u64 << (idx & 63)) != 0
                && self.buckets[idx].iter().any(|s| s.at == self.cursor)
            {
                return Some(self.cursor);
            }
            if self.next_overflow == self.cursor {
                return Some(self.cursor);
            }
            self.advance();
        }
    }

    /// Removes the earliest (min-seq) event at the cursor time from
    /// `buckets[idx]`, if one exists.
    ///
    /// Fast path: a clean bucket holds entries in seq order, so the
    /// first entry matching the cursor time is the minimum — and it is
    /// almost always at the front (`pop_front`). Only a bucket a refill
    /// appended to out of order needs the full min-seq scan.
    #[inline]
    fn take_from_bucket(&mut self, idx: usize) -> Option<Scheduled<E>> {
        let dirty = self.dirty[idx >> 6] & (1u64 << (idx & 63)) != 0;
        let bucket = &mut self.buckets[idx];
        let pos = if !dirty {
            if bucket.front().is_some_and(|s| s.at == self.cursor) {
                Some(0)
            } else {
                bucket.iter().position(|s| s.at == self.cursor)
            }
        } else {
            // events of different wheel turns can share a slot (e.g.
            // after a refill or a cursor rewind): filter to the cursor
            // time, then take the earliest seq
            let mut best: Option<(usize, u64)> = None;
            for (i, s) in bucket.iter().enumerate() {
                if s.at == self.cursor {
                    best = match best {
                        Some((_, bseq)) if bseq <= s.seq => best,
                        _ => Some((i, s.seq)),
                    };
                }
            }
            best.map(|(i, _)| i)
        }?;
        let ev = if pos == 0 {
            bucket.pop_front().expect("position 0 exists")
        } else {
            bucket.remove(pos).expect("position exists")
        };
        if bucket.is_empty() {
            self.occupied[idx >> 6] &= !(1u64 << (idx & 63));
            self.dirty[idx >> 6] &= !(1u64 << (idx & 63));
        }
        self.in_wheel -= 1;
        Some(ev)
    }

    /// Moves the cursor to the next candidate time: the next occupied
    /// slot of the current turn, else the next horizon boundary (where
    /// overflow refills), fast-forwarding over fully empty stretches.
    #[inline]
    fn advance(&mut self) {
        let idx = (self.cursor & self.mask) as usize;
        // Only slots idx+1 .. slots belong to the current turn (they map
        // to times cursor+1 .. boundary-1); earlier slots are next turn.
        if let Some(j) = self.next_occupied_after(idx) {
            self.cursor += (j - idx) as Cycle;
            return;
        }
        // boundary: cursor - idx is horizon-aligned, one turn further on
        self.cursor += self.horizon() - idx as Cycle;
        self.refill();
        if self.in_wheel == 0 {
            // fast-forward across an empty wheel to the first overflow
            debug_assert!(self.next_overflow != NO_OVERFLOW, "len says non-empty");
            self.cursor = self.next_overflow;
            self.refill();
        }
    }

    /// The first occupied slot index strictly after `idx`, if any.
    #[inline]
    fn next_occupied_after(&self, idx: usize) -> Option<usize> {
        let slots = self.buckets.len();
        let mut word_i = (idx + 1) >> 6;
        if word_i >= self.occupied.len() {
            return None;
        }
        // mask off bits <= idx in the first word
        let mut word = self.occupied[word_i] & (!0u64 << ((idx + 1) & 63));
        loop {
            if word != 0 {
                let j = (word_i << 6) + word.trailing_zeros() as usize;
                return (j < slots).then_some(j);
            }
            word_i += 1;
            if word_i >= self.occupied.len() {
                return None;
            }
            word = self.occupied[word_i];
        }
    }

    /// Moves overflow events that now fall within the horizon into the
    /// wheel, preserving seq for FIFO. Overflow keys are always beyond
    /// every bucketed time, so the moved events form a prefix of the map.
    fn refill(&mut self) {
        let hi = self.cursor + self.horizon();
        if self.next_overflow >= hi {
            return;
        }
        while let Some((&(at, _), _)) = self.overflow.first_key_value() {
            if at >= hi {
                break;
            }
            let ((at, seq), event) = self.overflow.pop_first().expect("non-empty");
            self.push_bucket(at, seq, event, true);
        }
        self.next_overflow = self
            .overflow
            .first_key_value()
            .map_or(NO_OVERFLOW, |(&(t, _), _)| t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;
    use proptest::prelude::*;

    #[test]
    fn basic_order() {
        let mut w = WheelQueue::new(8);
        w.schedule(30, "c");
        w.schedule(1, "a");
        w.schedule(7, "b");
        assert_eq!(w.pop().unwrap().event, "a");
        assert_eq!(w.pop().unwrap().event, "b");
        assert_eq!(w.pop().unwrap().event, "c");
        assert_eq!(w.now(), 30);
        assert!(w.pop().is_none());
    }

    #[test]
    fn fifo_within_cycle() {
        let mut w = WheelQueue::new(4);
        for i in 0..50 {
            w.schedule(9, i);
        }
        for i in 0..50 {
            assert_eq!(w.pop().unwrap().event, i);
        }
    }

    #[test]
    fn far_horizon_via_overflow() {
        let mut w = WheelQueue::new(4);
        w.schedule(1_000_000, "far");
        w.schedule(2, "near");
        assert_eq!(w.pop().unwrap().event, "near");
        assert_eq!(w.pop().unwrap().event, "far");
        assert_eq!(w.now(), 1_000_000);
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut w = WheelQueue::new(8);
        w.schedule(3, 1u32);
        assert_eq!(w.pop().unwrap().event, 1);
        w.schedule_in(5, 2);
        w.schedule_in(2, 3);
        assert_eq!(w.pop().unwrap().event, 3);
        assert_eq!(w.pop().unwrap().event, 2);
        assert_eq!(w.now(), 8);
    }

    #[test]
    fn peek_time_does_not_consume() {
        let mut w = WheelQueue::new(4);
        assert_eq!(w.peek_time(), None);
        w.schedule(5, "a");
        w.schedule(5, "b");
        assert_eq!(w.peek_time(), Some(5));
        assert_eq!(w.peek_time(), Some(5));
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop().unwrap().event, "a");
        assert_eq!(w.peek_time(), Some(5));
        assert_eq!(w.pop().unwrap().event, "b");
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn peek_time_reaches_overflow() {
        let mut w = WheelQueue::new(4);
        w.schedule(1_000, "far");
        assert_eq!(w.peek_time(), Some(1_000));
        assert_eq!(w.pop().unwrap().at, 1_000);
    }

    #[test]
    fn schedule_earlier_after_peek_rewinds() {
        // peek fast-forwards the cursor to 10; a later schedule at 3
        // (legal: now is still 0) must rewind and pop first
        let mut w = WheelQueue::new(4);
        w.schedule(10, "late");
        assert_eq!(w.peek_time(), Some(10));
        w.schedule(3, "early");
        assert_eq!(w.peek_time(), Some(3));
        assert_eq!(w.pop().unwrap().event, "early");
        assert_eq!(w.pop().unwrap().event, "late");
        assert!(w.pop().is_none());
    }

    #[test]
    fn same_slot_different_turns() {
        // horizon 4: times 2 and 6 share slot 2
        let mut w = WheelQueue::new(4);
        w.schedule(2, "t2");
        w.schedule(3, "t3");
        // t=6 is outside [cursor, cursor+4) = [0,4): goes to overflow
        w.schedule(6, "t6");
        assert_eq!(w.pop().unwrap().event, "t2");
        assert_eq!(w.pop().unwrap().event, "t3");
        assert_eq!(w.pop().unwrap().event, "t6");
    }

    #[test]
    fn slot_count_rounds_up_to_power_of_two() {
        let w = WheelQueue::<u32>::new(3);
        assert_eq!(w.horizon(), 4);
        let w = WheelQueue::<u32>::new(1000);
        assert_eq!(w.horizon(), 1024);
    }

    proptest! {
        /// The wheel pops in exactly the same order as the binary-heap
        /// queue for any schedule/pop interleaving.
        #[test]
        fn prop_equivalent_to_heap(
            slots in 2usize..32,
            ops in proptest::collection::vec((0u64..200, 0u8..3), 1..200),
        ) {
            let mut heap = EventQueue::new();
            let mut wheel = WheelQueue::new(slots);
            let mut tag = 0u64;
            for (d, action) in ops {
                match action {
                    0 => {
                        heap.schedule_in(d, tag);
                        wheel.schedule_in(d, tag);
                        tag += 1;
                    }
                    1 => {
                        let a = heap.pop().map(|s| (s.at, s.event));
                        let b = wheel.pop().map(|s| (s.at, s.event));
                        prop_assert_eq!(a, b);
                        prop_assert_eq!(heap.now(), wheel.now());
                    }
                    _ => {
                        // peeks interleave with schedules/pops without
                        // disturbing pop order
                        prop_assert_eq!(heap.peek_time(), wheel.peek_time());
                    }
                }
            }
            // drain both fully
            loop {
                let a = heap.pop().map(|s| (s.at, s.event));
                let b = wheel.pop().map(|s| (s.at, s.event));
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
