//! A timing-wheel event queue — the classic DES alternative to a binary
//! heap (cf. calendar queues, Brown 1988).
//!
//! Events within the wheel's horizon go into `buckets[time % N]`; events
//! beyond it wait in an overflow map that is drained as the wheel turns.
//! Pop order is identical to [`crate::EventQueue`]: nondecreasing time,
//! FIFO among equal times — verified by an equivalence property test.
//!
//! The wheel wins when event times are dense and near the current time
//! (the common case for a machine simulator, where most events are a few
//! cycles out); the heap wins on sparse, long-horizon schedules. The
//! `micro` criterion bench compares both under simulator-like load.

use std::collections::BTreeMap;

use crate::event::Scheduled;
use crate::Cycle;

/// A timing-wheel event queue with heap-identical ordering semantics.
#[derive(Debug)]
pub struct WheelQueue<E> {
    /// `buckets[t % N]` holds events with `t` within the horizon, in
    /// insertion order (same-time FIFO comes for free).
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Events beyond the horizon, keyed by `(time, seq)`.
    overflow: BTreeMap<(Cycle, u64), E>,
    /// Current time (last popped).
    now: Cycle,
    /// Next wheel slot to inspect (time, not index).
    cursor: Cycle,
    next_seq: u64,
    len: usize,
    popped: u64,
}

impl<E> WheelQueue<E> {
    /// Creates a wheel with `slots` one-cycle buckets of horizon.
    pub fn new(slots: usize) -> Self {
        assert!(slots >= 2);
        Self {
            buckets: (0..slots).map(|_| Vec::new()).collect(),
            overflow: BTreeMap::new(),
            now: 0,
            cursor: 0,
            next_seq: 0,
            len: 0,
            popped: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events popped so far.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    fn horizon(&self) -> Cycle {
        self.buckets.len() as Cycle
    }

    /// Schedules `event` at cycle `at` (must be `>= now()`).
    pub fn schedule(&mut self, at: Cycle, event: E) {
        debug_assert!(at >= self.now, "event scheduled in the past");
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        if at < self.cursor + self.horizon() && at >= self.cursor {
            let idx = (at % self.horizon()) as usize;
            self.buckets[idx].push(Scheduled { at, seq, event });
        } else {
            self.overflow.insert((at, seq), event);
        }
        self.len += 1;
    }

    /// Schedules `delay` cycles from now.
    pub fn schedule_in(&mut self, delay: Cycle, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Pops the next event (time order, FIFO within a cycle).
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        if self.len == 0 {
            return None;
        }
        loop {
            // (a) the wheel slot for the cursor time
            let idx = (self.cursor % self.horizon()) as usize;
            let bucket = &mut self.buckets[idx];
            if !bucket.is_empty() {
                // find the earliest (at, seq) at this slot; events of
                // different wheel turns can share a slot only if overflow
                // was drained early, so filter to the cursor time first
                if let Some(pos) = {
                    let mut best: Option<(usize, u64)> = None;
                    for (i, s) in bucket.iter().enumerate() {
                        if s.at == self.cursor {
                            best = match best {
                                Some((_, bseq)) if bseq <= s.seq => best,
                                _ => Some((i, s.seq)),
                            };
                        }
                    }
                    best.map(|(i, _)| i)
                } {
                    let ev = bucket.remove(pos);
                    self.len -= 1;
                    self.popped += 1;
                    self.now = ev.at;
                    return Some(ev);
                }
            }
            // (b) overflow events exactly at the cursor (horizon boundary)
            if let Some((&(at, _), _)) = self.overflow.iter().next() {
                if at == self.cursor {
                    let ((at, seq), event) = self.overflow.pop_first().expect("non-empty");
                    self.len -= 1;
                    self.popped += 1;
                    self.now = at;
                    return Some(Scheduled { at, seq, event });
                }
            }
            // advance the cursor; when a whole turn would be empty, jump
            self.cursor += 1;
            if self.cursor.is_multiple_of(self.horizon()) {
                self.refill();
            }
            // fast-forward across empty stretches
            if self.wheel_is_empty() {
                if let Some((&(at, _), _)) = self.overflow.iter().next() {
                    self.cursor = at;
                    self.refill();
                } else {
                    return None; // len bookkeeping says non-empty; defensive
                }
            }
        }
    }

    fn wheel_is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.is_empty())
    }

    /// Moves overflow events that now fall within the horizon into the
    /// wheel, preserving seq for FIFO.
    fn refill(&mut self) {
        let hi = self.cursor + self.horizon();
        let keys: Vec<(Cycle, u64)> = self
            .overflow
            .range((self.cursor, 0)..(hi, u64::MAX))
            .map(|(&k, _)| k)
            .collect();
        for k in keys {
            let event = self.overflow.remove(&k).expect("key exists");
            let idx = (k.0 % self.horizon()) as usize;
            self.buckets[idx].push(Scheduled {
                at: k.0,
                seq: k.1,
                event,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventQueue;
    use proptest::prelude::*;

    #[test]
    fn basic_order() {
        let mut w = WheelQueue::new(8);
        w.schedule(30, "c");
        w.schedule(1, "a");
        w.schedule(7, "b");
        assert_eq!(w.pop().unwrap().event, "a");
        assert_eq!(w.pop().unwrap().event, "b");
        assert_eq!(w.pop().unwrap().event, "c");
        assert_eq!(w.now(), 30);
        assert!(w.pop().is_none());
    }

    #[test]
    fn fifo_within_cycle() {
        let mut w = WheelQueue::new(4);
        for i in 0..50 {
            w.schedule(9, i);
        }
        for i in 0..50 {
            assert_eq!(w.pop().unwrap().event, i);
        }
    }

    #[test]
    fn far_horizon_via_overflow() {
        let mut w = WheelQueue::new(4);
        w.schedule(1_000_000, "far");
        w.schedule(2, "near");
        assert_eq!(w.pop().unwrap().event, "near");
        assert_eq!(w.pop().unwrap().event, "far");
        assert_eq!(w.now(), 1_000_000);
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut w = WheelQueue::new(8);
        w.schedule(3, 1u32);
        assert_eq!(w.pop().unwrap().event, 1);
        w.schedule_in(5, 2);
        w.schedule_in(2, 3);
        assert_eq!(w.pop().unwrap().event, 3);
        assert_eq!(w.pop().unwrap().event, 2);
        assert_eq!(w.now(), 8);
    }

    #[test]
    fn same_slot_different_turns() {
        // horizon 4: times 2 and 6 share slot 2
        let mut w = WheelQueue::new(4);
        w.schedule(2, "t2");
        w.schedule(3, "t3");
        // t=6 is outside [cursor, cursor+4) = [0,4): goes to overflow
        w.schedule(6, "t6");
        assert_eq!(w.pop().unwrap().event, "t2");
        assert_eq!(w.pop().unwrap().event, "t3");
        assert_eq!(w.pop().unwrap().event, "t6");
    }

    proptest! {
        /// The wheel pops in exactly the same order as the binary-heap
        /// queue for any schedule/pop interleaving.
        #[test]
        fn prop_equivalent_to_heap(
            slots in 2usize..32,
            ops in proptest::collection::vec((0u64..200, proptest::bool::ANY), 1..200),
        ) {
            let mut heap = EventQueue::new();
            let mut wheel = WheelQueue::new(slots);
            let mut tag = 0u64;
            for (d, do_pop) in ops {
                if do_pop {
                    let a = heap.pop().map(|s| (s.at, s.event));
                    let b = wheel.pop().map(|s| (s.at, s.event));
                    prop_assert_eq!(a, b);
                    prop_assert_eq!(heap.now(), wheel.now());
                } else {
                    heap.schedule_in(d, tag);
                    wheel.schedule_in(d, tag);
                    tag += 1;
                }
            }
            // drain both fully
            loop {
                let a = heap.pop().map(|s| (s.at, s.event));
                let b = wheel.pop().map(|s| (s.at, s.event));
                prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
