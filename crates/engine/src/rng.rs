//! Sealed, seedable pseudo-random number generation.
//!
//! The simulator's workload models are *probabilistic* (the paper's "sync
//! model" is a stochastic memory-reference generator in the style of
//! Archibald & Baer), so experiment reproducibility hinges on the PRNG being
//! stable across builds and dependency versions. We implement
//! **xoshiro256++** (Blackman & Vigna) seeded through **splitmix64**, the
//! standard recommended seeding procedure, and expose exactly the
//! distributions the workloads need.
//!
//! The generator is intentionally *not* cryptographic.

/// splitmix64 step; used for seeding and for deriving child seeds.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ PRNG.
///
/// Two `SimRng`s created from the same seed produce identical streams.
/// Use [`SimRng::fork`] to derive statistically independent child generators
/// (e.g. one per simulated node) from a parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not be seeded with all zeros; splitmix64 of any seed
        // cannot produce four zeros, but guard anyway.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        Self { s }
    }

    /// Derives an independent child generator, keyed by `stream`.
    ///
    /// Forking with distinct `stream` values yields generators whose
    /// sequences are independent for all practical purposes; the parent's
    /// state is not advanced.
    pub fn fork(&self, stream: u64) -> Self {
        // Mix the parent's state with the stream id through splitmix64.
        let mut sm =
            self.s[0] ^ self.s[1].rotate_left(17) ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let _ = splitmix64(&mut sm);
        Self::new(splitmix64(&mut sm))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= lo.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`. `lo < hi` required.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `usize` index in `[0, len)` — convenience for slice indexing.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        self.below(len as u64) as usize
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Geometric number of failures before the first success, for success
    /// probability `p` in `(0, 1]`; capped at `cap` to bound simulation work.
    pub fn geometric(&mut self, p: f64, cap: u64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric p out of range: {p}");
        if p >= 1.0 {
            return 0;
        }
        // Inversion: floor(ln(U) / ln(1-p)).
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        let g = (u.ln() / (1.0 - p).ln()).floor();
        (g as u64).min(cap)
    }

    /// Picks a uniformly random element of `slice`.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose from empty slice");
        &slice[self.index(slice.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_and_stable() {
        let parent = SimRng::new(7);
        let mut c0 = parent.fork(0);
        let mut c1 = parent.fork(1);
        let mut c0b = parent.fork(0);
        assert_eq!(c0.next_u64(), c0b.next_u64());
        // child streams differ from each other
        let mut c0 = parent.fork(0);
        let same = (0..64).filter(|_| c0.next_u64() == c1.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = SimRng::new(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::new(5);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.below(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(6);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_rate_matches_p() {
        let mut r = SimRng::new(8);
        let hits = (0..100_000).filter(|_| r.chance(0.15)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.15).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = SimRng::new(9);
        let p = 0.25;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.geometric(p, 10_000)).sum();
        let mean = sum as f64 / n as f64;
        let expect = (1.0 - p) / p; // 3.0
        assert!((mean - expect).abs() < 0.15, "mean = {mean}");
    }

    #[test]
    fn geometric_cap_and_p1() {
        let mut r = SimRng::new(10);
        assert_eq!(r.geometric(1.0, 5), 0);
        for _ in 0..1000 {
            assert!(r.geometric(0.001, 7) <= 7);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(12);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = SimRng::new(13);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[*r.choose(&items)] = true;
        }
        assert!(seen[1] && seen[2] && seen[3] && seen[4]);
    }

    proptest! {
        #[test]
        fn prop_range_bounds(lo in 0u64..1000, span in 1u64..1000, seed: u64) {
            let mut r = SimRng::new(seed);
            for _ in 0..100 {
                let x = r.range(lo, lo + span);
                prop_assert!(x >= lo && x < lo + span);
            }
        }

        #[test]
        fn prop_below_unbiased_small(bound in 1u64..17, seed: u64) {
            let mut r = SimRng::new(seed);
            for _ in 0..100 {
                prop_assert!(r.below(bound) < bound);
            }
        }
    }
}
