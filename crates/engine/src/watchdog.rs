//! Quiescence watchdog for discrete-event simulations.
//!
//! A simulation is *wedged* when agents are still waiting for something but
//! no event will ever wake them (the event queue drained), or when it has
//! run past a configured cycle budget without completing. The seed
//! simulator panicked in both situations; the watchdog instead classifies
//! them so the caller can emit a structured diagnosis (see
//! `ssmp_machine::DeadlockReport`) and terminate cleanly.

use crate::Cycle;

/// Why the watchdog fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogVerdict {
    /// The event queue drained while agents were still waiting: no future
    /// event can unblock them. A true protocol deadlock (or a lost
    /// message with no retry).
    Quiescent,
    /// The cycle budget was exceeded while agents were still live: either
    /// livelock or a workload that legitimately needs a larger budget.
    BudgetExhausted,
}

impl std::fmt::Display for WatchdogVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatchdogVerdict::Quiescent => write!(f, "event queue drained with live agents"),
            WatchdogVerdict::BudgetExhausted => write!(f, "cycle budget exhausted"),
        }
    }
}

/// Watches an event-driven run for quiescence and budget exhaustion.
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    budget: Cycle,
}

impl Watchdog {
    /// Creates a watchdog with the given cycle budget.
    pub fn new(budget: Cycle) -> Self {
        Self { budget }
    }

    /// The configured cycle budget.
    pub fn budget(&self) -> Cycle {
        self.budget
    }

    /// Checks the state of the main loop *before* dispatching the next
    /// event. `next_event` is the timestamp of the event about to run
    /// (`None` when the queue drained); `live` is the number of agents
    /// that have not yet retired.
    pub fn check(&self, next_event: Option<Cycle>, live: usize) -> Option<WatchdogVerdict> {
        if live == 0 {
            return None;
        }
        match next_event {
            None => Some(WatchdogVerdict::Quiescent),
            Some(at) if at > self.budget => Some(WatchdogVerdict::BudgetExhausted),
            Some(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_run_passes() {
        let w = Watchdog::new(1000);
        assert_eq!(w.check(Some(10), 4), None);
        assert_eq!(w.check(Some(1000), 1), None);
    }

    #[test]
    fn all_retired_never_fires() {
        let w = Watchdog::new(100);
        assert_eq!(w.check(None, 0), None);
        assert_eq!(w.check(Some(5000), 0), None);
    }

    #[test]
    fn drained_queue_with_live_agents_is_quiescent() {
        let w = Watchdog::new(1000);
        assert_eq!(w.check(None, 2), Some(WatchdogVerdict::Quiescent));
    }

    #[test]
    fn budget_overrun_is_flagged() {
        let w = Watchdog::new(1000);
        assert_eq!(
            w.check(Some(1001), 1),
            Some(WatchdogVerdict::BudgetExhausted)
        );
    }
}
