//! Hotspot contention (paper §1, citing Pfister & Norton): a growing
//! fraction of references aimed at one memory module saturates both the
//! module and the Ω-network paths towards it ("tree saturation").
//!
//! Run with: `cargo run --release --example hotspot`

use ssmp::machine::{Machine, MachineConfig};
use ssmp::workload::{Hotspot, HotspotParams};

fn run(n: usize, hot: f64) -> (u64, u64) {
    let wl = Hotspot::new(HotspotParams::new(n, hot, 200));
    let locks = wl.machine_locks();
    let r = Machine::builder(MachineConfig::sc_cbl(n))
        .workload(Box::new(wl))
        .locks(locks)
        .build()
        .unwrap()
        .run();
    (r.completion, r.net_queueing)
}

fn main() {
    println!("hotspot sweep: 200 READ-GLOBAL/processor, SC-CBL machine\n");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "n", "h=0%", "h=10%", "h=30%", "h=100%"
    );
    for n in [4usize, 16, 64] {
        let row: Vec<u64> = [0.0, 0.1, 0.3, 1.0].iter().map(|&h| run(n, h).0).collect();
        println!(
            "{n:>5} {:>12} {:>12} {:>12} {:>12}",
            row[0], row[1], row[2], row[3]
        );
    }
    println!("\nqueueing delay at n=64:");
    for h in [0.0, 0.1, 0.3, 1.0] {
        let (_, q) = run(64, h);
        println!("  h={h:>4}: {q} queued cycles");
    }
    println!(
        "\nEven a 10% hotspot multiplies completion at scale — the paper's\n\
         argument for taking synchronization polling off the network\n\
         entirely (queued locks, chained barrier release)."
    );
}
