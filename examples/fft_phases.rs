//! The §4.2 FFT showcase for reader-initiated coherence: readers need
//! *different regions* of the shared array in different phases, so they
//! `RESET-UPDATE` the old region and `READ-UPDATE` the new one — keeping
//! the update lists at the live reader set instead of pushing to stale
//! readers forever as a write-update protocol would.
//!
//! Run with: `cargo run --release --example fft_phases`

use ssmp::core::addr::Geometry;
use ssmp::machine::{Machine, MachineConfig, Report};
use ssmp::workload::{FftParams, FftPhases};

fn run(p: FftParams) -> Report {
    let n = p.nodes;
    let mut cfg = MachineConfig::bc_cbl(n);
    cfg.geometry = Geometry::new(n, 4, p.shared_blocks());
    let wl = FftPhases::new(p);
    let locks = wl.machine_locks();
    Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(locks)
        .build()
        .unwrap()
        .run()
}

fn main() {
    let n = 16;
    let p = FftParams::paper(n);
    println!(
        "butterfly FFT access pattern: {} nodes, {} phases, {} blocks/region\n",
        n,
        p.phases(),
        p.blocks_per_region
    );

    let live = run(p.clone());
    let mut sticky_p = p;
    sticky_p.reset_updates = false; // write-update-like: readers never leave
    let sticky = run(sticky_p);

    println!("{:<34} {:>14} {:>14}", "", "RESET-UPDATE", "sticky readers");
    for (label, a, b) in [
        ("completion (cycles)", live.completion, sticky.completion),
        (
            "update pushes",
            live.counters.get("msg.ric.update_push"),
            sticky.counters.get("msg.ric.update_push"),
        ),
        (
            "updates applied",
            live.counters.get("ric.update_applied"),
            sticky.counters.get("ric.update_applied"),
        ),
        ("network words", live.net_words, sticky.net_words),
    ] {
        println!("{label:<34} {a:>14} {b:>14}");
    }
    println!(
        "\nWith RESET-UPDATE, each write pushes only to the current phase's\n\
         readers; without it the update fan-out accumulates every reader the\n\
         block has ever had — the §4.1 argument for receiver-initiated\n\
         coherence over sender-initiated write-update."
    );
}
