//! The paper's §4.1 case study: an iterative linear-equation solver whose
//! only coherence-relevant traffic is the shared `x` vector.
//!
//! Compares three coherence strategies on identical work:
//!  * reader-initiated coherence (readers enroll once, writers push),
//!  * invalidation with packed `x` (`inv-I`: false sharing on writes),
//!  * invalidation with padded `x` (`inv-II`: full reload every iteration).
//!
//! Run with: `cargo run --release --example linear_solver`

use ssmp::core::addr::Geometry;
use ssmp::machine::{Machine, MachineConfig};
use ssmp::workload::{Allocation, LinearSolver, SolverParams};

fn run(n: usize, alloc: Allocation, ric: bool, iters: usize) -> (u64, u64, u64) {
    let p = SolverParams::paper(n, alloc, iters);
    let mut cfg = if ric {
        MachineConfig::sc_cbl(n)
    } else {
        MachineConfig::wbi(n)
    };
    cfg.geometry = Geometry::new(n, 4, p.shared_blocks().max(1));
    let wl = LinearSolver::new(p);
    let locks = wl.machine_locks();
    let r = Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(locks)
        .build()
        .unwrap()
        .run();
    (r.completion, r.total_messages(), r.net_words)
}

fn main() {
    let n = 16;
    let iters = 6;
    println!("linear solver, n = {n}, {iters} Jacobi iterations\n");
    println!(
        "{:<26} {:>12} {:>12} {:>12}",
        "scheme", "cycles", "messages", "net words"
    );
    for (name, alloc, ric) in [
        ("read-update (RIC)", Allocation::Packed, true),
        ("inv-I (packed x, WBI)", Allocation::Packed, false),
        ("inv-II (padded x, WBI)", Allocation::Padded, false),
    ] {
        let (cycles, msgs, words) = run(n, alloc, ric, iters);
        println!("{name:<26} {cycles:>12} {msgs:>12} {words:>12}");
    }
    println!(
        "\nThe paper's Table 2 analysis: every scheme pays comparable write\n\
         traffic, but the invalidation schemes must re-load the x vector\n\
         every iteration, while read-update pushes each new value to the\n\
         enrolled readers — reads become free."
    );
}
