//! Hardware barrier (directory counter + chained release, Table 3) versus
//! the software sense-reversing barrier over spin locks.
//!
//! Run with: `cargo run --release --example barrier_comparison`

use ssmp::machine::op::Script;
use ssmp::machine::{Machine, MachineConfig, Op};

fn episode(cfg: MachineConfig, episodes: usize) -> (u64, u64) {
    let n = cfg.geometry.nodes;
    let script: Vec<Vec<Op>> = (0..n)
        .map(|i| {
            let mut ops = Vec::new();
            for e in 0..episodes {
                // stagger arrivals differently each episode
                ops.push(Op::Compute(1 + ((i + e) % n) as u64));
                ops.push(Op::Barrier);
            }
            ops
        })
        .collect();
    let r = Machine::builder(cfg)
        .workload(Box::new(Script::new(script)))
        .locks(2)
        .build()
        .unwrap()
        .run();
    (r.completion, r.total_messages())
}

fn main() {
    let episodes = 4;
    println!("{episodes} barrier episodes, staggered arrivals\n");
    println!(
        "{:>4}  {:>12} {:>10}  {:>12} {:>10}  {:>8}",
        "n", "HW cycles", "HW msgs", "SW cycles", "SW msgs", "speedup"
    );
    for n in [4usize, 8, 16, 32, 64] {
        let (hc, hm) = episode(MachineConfig::cbl(n), episodes);
        let (sc, sm) = episode(MachineConfig::wbi(n), episodes);
        println!(
            "{n:>4}  {hc:>12} {hm:>10}  {sc:>12} {sm:>10}  {:>8.1}x",
            sc as f64 / hc as f64
        );
    }
    println!(
        "\nTable 3's claim: a barrier request costs 2 messages in hardware vs 18\n\
         in software, and the notify n vs 5n−3 — before counting the software\n\
         barrier's lock-contention storm, which dominates at scale."
    );
}
