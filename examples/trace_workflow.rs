//! Trace-driven methodology end to end (paper §6): capture a probabilistic
//! workload once, then replay the *identical* reference stream across
//! machine configurations — differences are attributable to the
//! architecture alone.
//!
//! Run with: `cargo run --release --example trace_workflow`

use ssmp::machine::{Machine, MachineConfig};
use ssmp::workload::{SyncModel, SyncParams, Trace};

fn main() {
    let n = 16;
    let wl = SyncModel::new(SyncParams::paper(n, 64, 6));
    let trace = Trace::capture(wl, "sync model n=16 grain=64", 2026);
    println!(
        "captured {} operations over {} nodes ({} bytes as JSON)\n",
        trace.len(),
        trace.nodes(),
        trace.to_json().len()
    );

    println!(
        "{:<14} {:>12} {:>12} {:>14}",
        "config", "cycles", "messages", "net queueing"
    );
    for (name, cfg) in [
        ("wbi", MachineConfig::wbi(n)),
        ("wbi-backoff", MachineConfig::wbi_backoff(n)),
        ("cbl", MachineConfig::cbl(n)),
        ("sc-cbl", MachineConfig::sc_cbl(n)),
        ("bc-cbl", MachineConfig::bc_cbl(n)),
    ] {
        let r = Machine::builder(cfg)
            .workload(Box::new(trace.replay()))
            .locks(17)
            .build()
            .unwrap()
            .run();
        println!(
            "{name:<14} {:>12} {:>12} {:>14}",
            r.completion,
            r.total_messages(),
            r.net_queueing
        );
    }
    println!(
        "\nThe trace round-trips through JSON bit-identically, so reference\n\
         streams can be stored, shared, and replayed — the methodology the\n\
         paper names as the successor to probabilistic simulation."
    );
}
