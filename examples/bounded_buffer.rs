//! Producer/consumer over a bounded buffer, built from the paper's §2
//! synchronization classes: semaphore **P** (NP-Synch — proceeds as soon
//! as the credit is granted) and **V** (CP-Synch — preceded by a
//! `FLUSH-BUFFER` so the produced data is globally visible before the
//! consumer is woken), plus a CBL mutex for the buffer indices.
//!
//! Run with: `cargo run --release --example bounded_buffer`

use ssmp::core::primitive::LockMode;
use ssmp::machine::op::Script;
use ssmp::machine::{Machine, MachineConfig, Op};

const EMPTY: usize = 0; // semaphore 0: free slots
const FULL: usize = 1; // semaphore 1: filled slots
const MUTEX: usize = 0; // CBL lock guarding the buffer indices

fn producer(items: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..items {
        ops.push(Op::Compute(20)); // produce
        ops.push(Op::SemP(EMPTY)); // wait for a free slot
        ops.push(Op::Lock(MUTEX, LockMode::Write));
        ops.push(Op::LockedWriteVal(MUTEX, 1, 1000 + i as u64)); // insert
        ops.push(Op::Unlock(MUTEX));
        ops.push(Op::SemV(FULL)); // publish (flushes first under BC)
    }
    ops
}

fn consumer(items: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..items {
        ops.push(Op::SemP(FULL)); // wait for an item
        ops.push(Op::Lock(MUTEX, LockMode::Write));
        ops.push(Op::LockedRead(MUTEX, 1)); // remove
        ops.push(Op::Unlock(MUTEX));
        ops.push(Op::SemV(EMPTY)); // free the slot
        ops.push(Op::Compute(15)); // consume
    }
    ops
}

fn main() {
    let capacity = 4u64;
    let items_per_pair = 16;
    let n = 8; // 4 producers + 4 consumers
    println!(
        "bounded buffer (capacity {capacity}): {} producers, {} consumers, {items_per_pair} items each\n",
        n / 2,
        n / 2
    );

    for (name, cfg) in [
        ("BC-CBL (proposed)", MachineConfig::bc_cbl(n)),
        ("SC-CBL", MachineConfig::sc_cbl(n)),
    ] {
        let mut streams = Vec::new();
        for _ in 0..n / 2 {
            streams.push(producer(items_per_pair));
        }
        for _ in 0..n / 2 {
            streams.push(consumer(items_per_pair));
        }
        let m = Machine::builder(cfg)
            .workload(Box::new(Script::new(streams)))
            .locks(2)
            .semaphores(&[capacity, 0])
            .build()
            .unwrap();
        let r = m.run();
        println!(
            "{name:<20} {:>8} cycles | sem grants {} | P blocks resolved FIFO | mutex grants {}",
            r.completion,
            r.counters.get("sem.acquired"),
            r.counters.get("lock.cbl.granted"),
        );
    }
    println!(
        "\nEvery producer item is matched by a consumer credit: 2 semaphores x\n\
         {} P operations each, all granted; V hands credits directly to the\n\
         oldest blocked waiter at the home directory (no retry traffic).",
        (n / 2) * items_per_pair
    );
}
