//! The work-queue dynamic-scheduling workload (paper §5.2) across all five
//! machine configurations — a miniature of Figures 4–7.
//!
//! Run with: `cargo run --release --example work_queue`

use ssmp::machine::{Machine, MachineConfig};
use ssmp::workload::{Grain, WorkQueue, WorkQueueParams};

fn run(cfg: MachineConfig, grain: Grain) -> u64 {
    let n = cfg.geometry.nodes;
    let wl = WorkQueue::new(WorkQueueParams::paper(n, grain, 4));
    let locks = wl.machine_locks();
    Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(locks)
        .build()
        .unwrap()
        .run()
        .completion
}

fn main() {
    for (gname, grain) in [("medium", Grain::Medium), ("coarse", Grain::Coarse)] {
        println!("work queue, {gname} grain, weak scaling (4 tasks/node):");
        println!(
            "{:>4} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "n", "Q-WBI", "Q-backoff", "Q-CBL", "SC-CBL", "BC-CBL"
        );
        for n in [4usize, 8, 16, 32] {
            println!(
                "{n:>4} {:>12} {:>12} {:>12} {:>12} {:>12}",
                run(MachineConfig::wbi(n), grain),
                run(MachineConfig::wbi_backoff(n), grain),
                run(MachineConfig::cbl(n), grain),
                run(MachineConfig::sc_cbl(n), grain),
                run(MachineConfig::bc_cbl(n), grain),
            );
        }
        println!();
    }
    println!(
        "Q-WBI degrades sharply with scale (queue-lock contention over the\n\
         invalidation protocol); hardware queued locks (CBL) keep the queue\n\
         near its serial limit; buffered consistency shaves the remaining\n\
         global-write stalls."
    );
}
