//! The Table 3 "parallel lock" scenario, live: every node requests the
//! same lock at once and holds it briefly. Compares the three lock
//! implementations across machine sizes — the O(n) vs O(n²) story.
//!
//! Run with: `cargo run --release --example lock_contention`

use ssmp::core::primitive::LockMode;
use ssmp::machine::op::Script;
use ssmp::machine::{Machine, MachineConfig, Op};

fn contend(cfg: MachineConfig, t_cs: u64) -> (u64, u64, f64) {
    let n = cfg.geometry.nodes;
    let script = vec![
        vec![
            Op::Lock(0, LockMode::Write),
            Op::Compute(t_cs),
            Op::Unlock(0),
        ];
        n
    ];
    let r = Machine::builder(cfg)
        .workload(Box::new(Script::new(script)))
        .locks(2)
        .build()
        .unwrap()
        .run();
    (
        r.completion,
        r.total_messages(),
        r.lock_wait.mean().unwrap_or(0.0),
    )
}

fn main() {
    let t_cs = 20;
    println!("parallel-lock scenario: n simultaneous requesters, {t_cs}-cycle critical sections\n");
    println!(
        "{:>4}  {:>10} {:>9} {:>10}   {:>10} {:>9} {:>10}   {:>10} {:>9}",
        "n", "TTS cyc", "TTS msg", "TTS wait", "backoff", "bo msg", "bo wait", "CBL cyc", "CBL msg"
    );
    for n in [4usize, 8, 16, 32, 64] {
        let (tc, tm, tw) = contend(MachineConfig::wbi(n), t_cs);
        let (bc, bm, bw) = contend(MachineConfig::wbi_backoff(n), t_cs);
        let (cc, cm, _) = contend(MachineConfig::cbl(n), t_cs);
        println!(
            "{n:>4}  {tc:>10} {tm:>9} {tw:>10.0}   {bc:>10} {bm:>9} {bw:>10.0}   {cc:>10} {cm:>9}"
        );
    }
    println!(
        "\nExpected: TTS messages grow quadratically (each release triggers a\n\
         refill + test-and-set storm); CBL messages grow linearly (the lock\n\
         hands directly down the hardware queue, data riding with the grant)."
    );
}
