//! Red-black SOR on a ring of grid chunks: each sweep, every processor
//! reads its neighbours' boundary words. The neighbour set never changes —
//! reader-initiated coherence enrolls once and every later read is a
//! push-fresh cache hit, while the invalidation baseline re-fetches the
//! halo every sweep.
//!
//! Run with: `cargo run --release --example sor_stencil`

use ssmp::core::addr::Geometry;
use ssmp::machine::{Machine, MachineConfig};
use ssmp::workload::{Sor, SorParams};

fn run(mut cfg: MachineConfig, n: usize, sweeps: usize) -> (u64, u64, u64) {
    let p = SorParams::new(n, sweeps);
    cfg.geometry = Geometry::new(n, 4, p.shared_blocks());
    let wl = Sor::new(p);
    let locks = wl.machine_locks();
    let r = Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(locks)
        .build()
        .unwrap()
        .run();
    (
        r.completion,
        r.counters.get("shared.read.miss"),
        r.total_messages(),
    )
}

fn main() {
    let sweeps = 10;
    println!("red-black SOR, {sweeps} sweeps, halo exchange on a ring\n");
    println!(
        "{:>5}  {:>10} {:>10} {:>9}   {:>10} {:>10} {:>9}",
        "n", "RIC cyc", "RIC miss", "RIC msg", "WBI cyc", "WBI miss", "WBI msg"
    );
    for n in [4usize, 8, 16, 32, 64] {
        let (rc, rm, rmsg) = run(MachineConfig::bc_cbl(n), n, sweeps);
        let (wc, wm, wmsg) = run(MachineConfig::wbi(n), n, sweeps);
        println!("{n:>5}  {rc:>10} {rm:>10} {rmsg:>9}   {wc:>10} {wm:>10} {wmsg:>9}");
    }
    println!(
        "\nRIC read misses stay at the cold start (one enrollment per\n\
         neighbour block); WBI misses scale with sweeps × halo size, because\n\
         every boundary write invalidates the neighbours' copies."
    );
}
