//! Quickstart: build an 8-node machine with the paper's proposed
//! architecture (reader-initiated coherence + cache-based locks + buffered
//! consistency), run a dynamic work-queue workload on it, and print the
//! cycle-accurate report.
//!
//! Run with: `cargo run --release --example quickstart`

use ssmp::machine::{Machine, MachineConfig};
use ssmp::workload::{Grain, WorkQueue, WorkQueueParams};

fn main() {
    // The paper's `BC-CBL` configuration at 8 nodes (Table 4 timing).
    let cfg = MachineConfig::bc_cbl(8);

    // A dynamic-scheduling workload: 8 × 4 tasks of 64 references each,
    // dispatched through a lock-protected work queue (paper §5.2).
    let wl = WorkQueue::new(WorkQueueParams::paper(8, Grain::Medium, 4));
    let locks = wl.machine_locks();

    let report = Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(locks)
        .build()
        .unwrap()
        .run();

    println!("{}", report.summary());
    println!("selected counters:");
    for name in [
        "lock.cbl.granted",
        "msg.cbl.grant_chain",
        "msg.ric.write_global",
        "msg.ric.update_push",
        "barrier.hw.passed",
        "wbuf.acked",
    ] {
        println!("  {name:<28} {}", report.counters.get(name));
    }

    // Compare against the same workload on the WBI baseline.
    let wl = WorkQueue::new(WorkQueueParams::paper(8, Grain::Medium, 4));
    let locks = wl.machine_locks();
    let baseline = Machine::builder(MachineConfig::wbi(8))
        .workload(Box::new(wl))
        .locks(locks)
        .build()
        .unwrap()
        .run();
    println!(
        "\nbaseline (WBI + spin locks): {} cycles — proposed architecture: {} cycles ({:.2}x)",
        baseline.completion,
        report.completion,
        baseline.completion as f64 / report.completion as f64
    );
}
