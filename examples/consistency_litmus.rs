//! The message-passing litmus test live on the machine: how buffered
//! consistency (§2) differs observably from sequential consistency, and
//! how `FLUSH-BUFFER` restores order where the software needs it.
//!
//! Run with: `cargo run --release --example consistency_litmus`

use ssmp::core::addr::{Geometry, SharedAddr};
use ssmp::machine::op::Script;
use ssmp::machine::{Machine, MachineConfig, Op};

const DATA: SharedAddr = SharedAddr { block: 1, word: 0 };
const FLAG: SharedAddr = SharedAddr { block: 2, word: 0 };

fn observe(mut cfg: MachineConfig, flush: bool, pad: usize) -> (u64, u64) {
    cfg.record_reads = true;
    cfg.geometry = Geometry::new(2, 4, 32);
    let mut writer = vec![Op::Compute(50)];
    for i in 0..pad {
        let block = 1 + 2 * (1 + i % 4);
        writer.push(Op::SharedWriteVal(SharedAddr::new(block, (i % 4) as u8), 5));
    }
    writer.push(Op::SharedWriteVal(DATA, 1));
    if flush {
        writer.push(Op::FlushBuffer);
    }
    writer.push(Op::SharedWriteVal(FLAG, 1));
    writer.push(Op::FlushBuffer);
    let reader = vec![
        Op::SharedRead(DATA),
        Op::SpinUntilGlobal(FLAG, 1),
        Op::SharedRead(DATA),
    ];
    let r = Machine::builder(cfg)
        .workload(Box::new(Script::new(vec![writer, reader])))
        .locks(1)
        .build()
        .unwrap()
        .run();
    let reads: Vec<u64> = r
        .read_log
        .iter()
        .filter(|(n, b, ..)| *n == 1 && *b == DATA.block)
        .map(|(.., v)| *v)
        .collect();
    (
        reads.first().copied().unwrap_or(9),
        reads.last().copied().unwrap_or(9),
    )
}

fn main() {
    println!(
        "message passing: writer stores DATA then FLAG; reader spins on FLAG, then reads DATA\n"
    );
    println!(
        "{:<42} {:>12} {:>18}",
        "configuration", "DATA before", "DATA after FLAG=1"
    );
    for (name, cfg, flush, pad) in [
        (
            "SC (every write stalls)",
            MachineConfig::sc_cbl(2),
            false,
            16,
        ),
        ("BC, no flush (weak!)", MachineConfig::bc_cbl(2), false, 16),
        (
            "BC + FLUSH-BUFFER before FLAG",
            MachineConfig::bc_cbl(2),
            true,
            16,
        ),
    ] {
        let (before, after) = observe(cfg, flush, pad);
        let verdict = if after == 1 { "ordered" } else { "REORDERED" };
        println!("{name:<42} {before:>12} {after:>15} ({verdict})");
    }
    println!(
        "\nBuffered consistency deliberately permits the reorder — the paper's\n\
         discipline is that software signals only through CP-Synch operations\n\
         (unlock, V, barrier), which flush the write buffer first. The raw\n\
         flag write above violates that discipline; FLUSH-BUFFER repairs it."
    );
}
