//! A minimal, dependency-free subset of the `proptest` API.
//!
//! This workspace builds in offline environments where crates.io is not
//! reachable, so the real `proptest` cannot be fetched. This shim vendors
//! just the surface the test suite uses:
//!
//! - [`Strategy`] with `generate` + [`Strategy::prop_map`]
//! - integer and float [`std::ops::Range`] strategies, tuple strategies
//!   (arity 2–4), [`collection::vec`], [`bool::ANY`](crate::bool::ANY)
//! - [`Arbitrary`] / [`any`] for bare `x: ty` parameters
//! - the [`proptest!`] macro (with `#![proptest_config(..)]` support),
//!   [`prop_assert!`] and [`prop_assert_eq!`]
//!
//! Differences from the real crate: no shrinking (a failing case fails the
//! test with the panic message directly), and the per-test RNG is seeded
//! deterministically from the test's module path + name, so runs are
//! reproducible without a persistence file.

/// Deterministic RNG used to drive strategy generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Creates an RNG deterministically seeded from a test's name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the fully qualified test name.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::new(h)
    }

    /// Next raw 64-bit value (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style widening multiply keeps bias negligible for test use.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of one type.
///
/// Unlike the real proptest `Strategy` (which builds value *trees* for
/// shrinking), this shim generates plain values directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length range for [`vec`], mirroring proptest's `SizeRange`: built
    /// from a `usize`, `a..b`, or `a..=b` so plain integer literals at call
    /// sites infer as `usize`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: r.end().saturating_add(1),
            }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values with a length
    /// drawn from `size`.
    pub fn vec<E: Strategy>(elem: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<E> {
        elem: E,
        size: SizeRange,
    }

    impl<E: Strategy> Strategy for VecStrategy<E> {
        type Value = Vec<E::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy for a uniformly random `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Types with a canonical "any value" strategy, used for bare `x: ty`
/// parameters in [`proptest!`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (shim: draws directly, no shrinking).
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Runner configuration (shim: only the case count is honoured).
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property (shim: panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (shim: panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (shim: panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests. Supports an optional
/// `#![proptest_config(expr)]` header and any number of test functions
/// whose parameters are either `name in strategy_expr` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            (<$crate::ProptestConfig as ::std::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..__config.cases {
                $crate::__proptest_bind!(__rng, $($params)*);
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident: $ty:ty) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(1.0f64..2.0), &mut rng);
            assert!((1.0..2.0).contains(&f));
            let n = Strategy::generate(&(4usize..=4), &mut rng);
            assert_eq!(n, 4);
        }
    }

    #[test]
    fn vec_and_tuple_compose() {
        let mut rng = crate::TestRng::new(11);
        let s = crate::collection::vec((0u64..10, crate::bool::ANY), 2..5);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..5).contains(&v.len()));
            for (x, _) in v {
                assert!(x < 10);
            }
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::new(3);
        let s = (0u64..5).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(Strategy::generate(&s, &mut rng) % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x::y");
        let mut b = crate::TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself binds `in` and `: ty` parameters.
        #[test]
        fn macro_binds_params(x in 1u32..10, seed: u64, v in crate::collection::vec(0u8..4, 1..6)) {
            prop_assert!((1..10).contains(&x));
            let _ = seed;
            prop_assert!(!v.is_empty());
            prop_assert_eq!(v.iter().filter(|&&b| b >= 4).count(), 0);
        }
    }
}
