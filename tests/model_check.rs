//! Bounded exhaustive model checking of the CBL lock protocol.
//!
//! Property tests sample interleavings; this harness explores **all** of
//! them for small configurations — every reachable (queue state, in-flight
//! message multiset, program counter) vertex under per-(src,dst)-FIFO
//! delivery — and checks, at every state:
//!
//! * **safety** — the mutual-exclusion invariant;
//! * **deadlock freedom** — every non-final state has a successor;
//! * **termination soundness** — every terminal state has all critical
//!   sections executed and the queue quiescently free.
//!
//! Node programs are `rounds` iterations of `request; (hold); release`,
//! with both lock modes explored.

use std::collections::{HashSet, VecDeque};

use ssmp::core::cbl::{CblEffect, CblMsg, LockQueue};
use ssmp::core::primitive::LockMode;

/// One node's progress through its `request/release` rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
struct NodeScript {
    mode: LockMode,
    rounds_left: u32,
    /// true when the node currently holds the lock and must release.
    holding: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct State {
    q: LockQueue,
    wire: VecDeque<CblMsg>,
    scripts: Vec<NodeScript>,
    grants_seen: u32,
}

impl State {
    fn key(&self) -> String {
        format!(
            "{:?}|{:?}|{:?}|{}",
            self.q, self.wire, self.scripts, self.grants_seen
        )
    }

    fn is_final(&self) -> bool {
        self.wire.is_empty()
            && self
                .scripts
                .iter()
                .all(|s| s.rounds_left == 0 && !s.holding)
    }

    /// Deliverable message indices: first in-flight per (src, dst) pair.
    fn deliverable(&self) -> Vec<usize> {
        let mut out = Vec::new();
        'outer: for (i, m) in self.wire.iter().enumerate() {
            for e in self.wire.iter().take(i) {
                if e.src == m.src && e.dst == m.dst {
                    continue 'outer;
                }
            }
            out.push(i);
        }
        out
    }
}

fn apply_effects(st: &mut State, effects: &[CblEffect]) {
    for e in effects {
        if let CblEffect::Granted { node, .. } = e {
            st.grants_seen += 1;
            let s = &mut st.scripts[*node];
            assert!(!s.holding, "granted while already holding");
            s.holding = true;
        }
    }
}

/// Enumerates all successor states.
fn successors(st: &State) -> Vec<State> {
    let mut out = Vec::new();
    // (a) deliver any FIFO-eligible message
    for i in st.deliverable() {
        let mut next = st.clone();
        let msg = next.wire.remove(i).expect("index valid");
        let (msgs, effects) = next.q.deliver(msg);
        next.q.check_exclusion().expect("exclusion violated");
        next.wire.extend(msgs);
        apply_effects(&mut next, &effects);
        out.push(next);
    }
    // (b) any node may take its next program step
    for node in 0..st.scripts.len() {
        let s = &st.scripts[node];
        if s.holding {
            let mut next = st.clone();
            next.scripts[node].holding = false;
            next.scripts[node].rounds_left -= 1;
            let (msgs, effects) = next.q.release(node);
            next.q.check_exclusion().expect("exclusion violated");
            next.wire.extend(msgs);
            apply_effects(&mut next, &effects);
            out.push(next);
        } else if s.rounds_left > 0 && !st.q.is_active(node) {
            let mut next = st.clone();
            let msgs = next.q.request(node, s.mode);
            next.wire.extend(msgs);
            out.push(next);
        }
    }
    out
}

/// Explores the full state space; returns (states visited, grants seen at
/// terminals).
fn explore(modes: &[LockMode], rounds: u32, max_states: usize) -> (usize, u32) {
    let init = State {
        q: LockQueue::new(4),
        wire: VecDeque::new(),
        scripts: modes
            .iter()
            .map(|&mode| NodeScript {
                mode,
                rounds_left: rounds,
                holding: false,
            })
            .collect(),
        grants_seen: 0,
    };
    let expected_grants = modes.len() as u32 * rounds;
    let mut visited: HashSet<String> = HashSet::new();
    let mut stack = vec![init];
    let mut terminals = 0u32;
    while let Some(st) = stack.pop() {
        if !visited.insert(st.key()) {
            continue;
        }
        assert!(
            visited.len() <= max_states,
            "state space larger than expected ({max_states})"
        );
        let succ = successors(&st);
        if succ.is_empty() {
            // terminal: everything done, queue free, all grants happened
            assert!(
                st.is_final(),
                "deadlock: no successor in non-final state {st:?}"
            );
            assert!(
                st.q.is_quiescent_free(),
                "terminal state with residual queue: {:?}",
                st.q
            );
            assert_eq!(
                st.grants_seen, expected_grants,
                "terminal state missed grants"
            );
            terminals += 1;
        } else {
            stack.extend(succ);
        }
    }
    assert!(terminals > 0, "no terminal state reached");
    (visited.len(), expected_grants)
}

#[test]
fn two_writers_two_rounds_exhaustive() {
    let (states, _) = explore(&[LockMode::Write, LockMode::Write], 2, 2_000_000);
    assert!(states > 100, "state space suspiciously small: {states}");
}

#[test]
fn three_writers_one_round_exhaustive() {
    let (states, _) = explore(&[LockMode::Write; 3], 1, 2_000_000);
    assert!(states > 200);
}

#[test]
fn two_readers_one_writer_exhaustive() {
    let (states, _) = explore(
        &[LockMode::Read, LockMode::Read, LockMode::Write],
        1,
        5_000_000,
    );
    assert!(states > 200);
}

#[test]
fn three_readers_exhaustive() {
    let (states, _) = explore(&[LockMode::Read; 3], 1, 5_000_000);
    assert!(states > 100);
}

#[test]
fn reader_writer_two_rounds_exhaustive() {
    let (states, _) = explore(&[LockMode::Read, LockMode::Write], 2, 2_000_000);
    assert!(states > 100);
}

// ---------------------------------------------------------------------
// WBI directory protocol: bounded exhaustive exploration
// ---------------------------------------------------------------------

mod wbi_check {
    use std::collections::{HashSet, VecDeque};

    use ssmp::wbi::{WbiBlock, WbiEffect, WbiMsg};

    /// Each node's program: a list of (is_write, value) accesses to word 0.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct WState {
        b: WbiBlock,
        wire: VecDeque<WbiMsg>,
        /// per-node remaining accesses
        progs: Vec<Vec<(bool, u64)>>,
        /// per-node outstanding request (waiting for a fill/ownership)
        waiting: Vec<Option<(bool, u64)>>,
    }

    impl WState {
        fn key(&self) -> String {
            format!(
                "{:?}|{:?}|{:?}|{:?}",
                self.b, self.wire, self.progs, self.waiting
            )
        }

        fn deliverable(&self) -> Vec<usize> {
            let mut out = Vec::new();
            'outer: for (i, m) in self.wire.iter().enumerate() {
                for e in self.wire.iter().take(i) {
                    if e.src == m.src && e.dst == m.dst {
                        continue 'outer;
                    }
                }
                out.push(i);
            }
            out
        }

        fn is_final(&self) -> bool {
            self.wire.is_empty()
                && self.progs.iter().all(|p| p.is_empty())
                && self.waiting.iter().all(|w| w.is_none())
        }
    }

    /// Applies fills: a node whose outstanding access completed performs
    /// the deferred store (if a write).
    fn apply_effects(st: &mut WState, effects: Vec<WbiEffect>) {
        for e in effects {
            match e {
                WbiEffect::FilledShared { node, .. } => {
                    if let Some((false, _)) = st.waiting[node] {
                        st.waiting[node] = None; // read satisfied
                    }
                }
                WbiEffect::FilledExcl { node, .. } | WbiEffect::UpgradeGranted { node } => {
                    if let Some((true, v)) = st.waiting[node] {
                        assert!(st.b.local_write(node, 0, v), "store after ownership");
                        st.waiting[node] = None;
                    }
                }
                WbiEffect::Invalidated { .. } | WbiEffect::Downgraded { .. } => {}
            }
        }
    }

    fn successors(st: &WState) -> Vec<WState> {
        let mut out = Vec::new();
        for i in st.deliverable() {
            let mut next = st.clone();
            let m = next.wire.remove(i).expect("valid index");
            let (msgs, effects) = next.b.deliver(m);
            next.b
                .check_single_writer()
                .expect("single-writer violated");
            next.wire.extend(msgs);
            apply_effects(&mut next, effects);
            out.push(next);
        }
        for node in 0..st.progs.len() {
            if st.waiting[node].is_some() || st.progs[node].is_empty() {
                continue;
            }
            let mut next = st.clone();
            let (is_write, v) = next.progs[node].remove(0);
            if is_write {
                if next.b.local_write(node, 0, v) {
                    // silent hit (Modified/Exclusive)
                } else {
                    next.waiting[node] = Some((true, v));
                    let msgs = next.b.write_req(node);
                    next.wire.extend(msgs);
                }
            } else if next.b.local_read(node, 0).is_some() {
                // read hit
            } else {
                next.waiting[node] = Some((false, 0));
                let msgs = next.b.read_req(node);
                next.wire.extend(msgs);
            }
            out.push(next);
        }
        out
    }

    fn explore(progs: Vec<Vec<(bool, u64)>>, mesi: bool, max_states: usize) -> usize {
        let nodes = progs.len();
        // the final memory value must be one of the written values (no
        // invented or lost data): collect the candidate set
        let written: Vec<u64> = progs
            .iter()
            .flatten()
            .filter(|(w, _)| *w)
            .map(|(_, v)| *v)
            .collect();
        let init = WState {
            b: if mesi {
                WbiBlock::with_mesi(4)
            } else {
                WbiBlock::new(4)
            },
            wire: VecDeque::new(),
            progs,
            waiting: vec![None; nodes],
        };
        let mut visited: HashSet<String> = HashSet::new();
        let mut stack = vec![init];
        let mut terminals = 0;
        while let Some(st) = stack.pop() {
            if !visited.insert(st.key()) {
                continue;
            }
            assert!(
                visited.len() <= max_states,
                "state space exceeded {max_states}"
            );
            let succ = successors(&st);
            if succ.is_empty() {
                assert!(st.is_final(), "protocol deadlock: {st:?}");
                // coherent final value: reconstruct the owner's view
                let v = (0..nodes)
                    .find_map(|n| st.b.local_read(n, 0))
                    .unwrap_or_else(|| st.b.mem().get(0));
                assert!(
                    v == 0 || written.contains(&v),
                    "final value {v} was never written"
                );
                terminals += 1;
            } else {
                stack.extend(succ);
            }
        }
        assert!(terminals > 0);
        visited.len()
    }

    #[test]
    fn two_writers_exhaustive() {
        let states = explore(vec![vec![(true, 11)], vec![(true, 22)]], false, 500_000);
        assert!(states > 20, "{states}");
    }

    #[test]
    fn reader_writer_exhaustive() {
        let states = explore(
            vec![vec![(false, 0), (false, 0)], vec![(true, 7), (true, 8)]],
            false,
            2_000_000,
        );
        assert!(states > 50, "{states}");
    }

    #[test]
    fn three_nodes_mixed_exhaustive() {
        let states = explore(
            vec![
                vec![(false, 0)],
                vec![(true, 5)],
                vec![(false, 0), (true, 9)],
            ],
            false,
            5_000_000,
        );
        assert!(states > 100, "{states}");
    }

    #[test]
    fn mesi_two_nodes_exhaustive() {
        let states = explore(
            vec![vec![(false, 0), (true, 3)], vec![(true, 4), (false, 0)]],
            true,
            2_000_000,
        );
        assert!(states > 50, "{states}");
    }
}
