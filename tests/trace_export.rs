//! End-to-end trace export: the Perfetto/Chrome-trace render of a seeded
//! run must be valid JSON with per-node tracks, stall spans, and message
//! flows; it must be bit-deterministic across runs; and tracing must be a
//! pure observer (a traced run reports exactly what an untraced run does).

use ssmp::engine::trace::{render_chrome_trace, validate_jsonl, MemorySink};
use ssmp::engine::{Json, TraceEvent, TraceFilter, Tracer};
use ssmp::machine::{Machine, MachineConfig, Report};
use ssmp::workload::{Grain, SyncModel, SyncParams, WorkQueue, WorkQueueParams};

/// A small fig4-style contended run (work queue under BC + CBL).
fn build(cfg: MachineConfig, tracer: Tracer) -> Machine {
    let nodes = cfg.geometry.nodes;
    let wl = WorkQueue::new(WorkQueueParams::paper(nodes, Grain::Fine, 3 * nodes));
    let locks = wl.machine_locks();
    Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(locks)
        .tracer(tracer)
        .build()
        .unwrap()
}

/// Runs the workload with a memory sink attached; returns the report and
/// the recorded events.
fn traced_run(cfg: MachineConfig) -> (Report, Vec<TraceEvent>) {
    let (sink, events) = MemorySink::new();
    let mut tracer = Tracer::new(TraceFilter::all()).with_ring(64);
    tracer.add_sink(sink);
    let r = build(cfg, tracer).run();
    let evs = events.borrow().clone();
    (r, evs)
}

#[test]
fn perfetto_export_is_valid_chrome_trace() {
    let (r, events) = traced_run(MachineConfig::bc_cbl(4));
    assert!(r.deadlock.is_none());
    assert!(!events.is_empty(), "no events recorded");
    let rendered = render_chrome_trace(&events);
    let doc = Json::parse(&rendered).expect("chrome trace must be valid JSON");
    let evs = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    // Per-node tracks: a thread_name metadata record for every node plus
    // the machine track.
    let names: Vec<&str> = evs
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
        })
        .collect();
    for n in ["machine", "node 0", "node 1", "node 2", "node 3"] {
        assert!(names.contains(&n), "missing track '{n}' in {names:?}");
    }
    // Stall spans are complete duration events.
    let spans = evs
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .count();
    assert!(spans > 0, "no stall spans rendered");
    for e in evs {
        if e.get("ph").and_then(|p| p.as_str()) == Some("X") {
            assert!(e.get("dur").is_some(), "span without dur");
        }
    }
    // Message flows: every flow start has a matching finish.
    let flows_s = evs
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("s"))
        .count();
    let flows_f = evs
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("f"))
        .count();
    assert!(flows_s > 0, "no flow events rendered");
    assert!(flows_f > 0, "no flow finishes rendered");
}

#[test]
fn perfetto_export_is_bit_deterministic() {
    let (_, a) = traced_run(MachineConfig::bc_cbl(4));
    let (_, b) = traced_run(MachineConfig::bc_cbl(4));
    assert_eq!(a, b, "event streams differ between identical seeded runs");
    assert_eq!(
        render_chrome_trace(&a),
        render_chrome_trace(&b),
        "rendered traces differ between identical seeded runs"
    );
}

#[test]
fn jsonl_lines_of_a_real_run_validate() {
    let (_, events) = traced_run(MachineConfig::cbl(4));
    for ev in &events {
        let line = ev.to_jsonl();
        let doc = Json::parse(&line).expect("jsonl line must parse");
        validate_jsonl(&doc).expect("jsonl line must validate");
    }
}

/// Tracing must be a pure observer: attaching a tracer cannot change a
/// single counter, timing, or the final memory image.
#[test]
fn traced_run_reports_exactly_as_untraced() {
    for cfg in [
        MachineConfig::bc_cbl(4),
        MachineConfig::wbi(4),
        MachineConfig::sc_cbl(4),
    ] {
        let plain = build(cfg.clone(), Tracer::off()).run();
        let (traced, _) = traced_run(cfg);
        assert_eq!(plain.completion, traced.completion);
        assert_eq!(plain.net_packets, traced.net_packets);
        assert_eq!(plain.net_words, traced.net_words);
        assert_eq!(plain.net_queueing, traced.net_queueing);
        assert_eq!(plain.shared_memory, traced.shared_memory);
        assert_eq!(plain.lock_blocks, traced.lock_blocks);
        assert_eq!(plain.stalled_cycles, traced.stalled_cycles);
        let a: Vec<_> = plain.counters.iter().collect();
        let b: Vec<_> = traced.counters.iter().collect();
        assert_eq!(a, b, "counters diverge under tracing");
    }
}

#[test]
fn interval_metrics_sample_the_run() {
    let mut cfg = MachineConfig::bc_cbl(4);
    cfg.metrics_interval = Some(50);
    let nodes = cfg.geometry.nodes;
    let wl = SyncModel::new(SyncParams::paper(nodes, 16, 4));
    let locks = wl.machine_locks();
    let r = Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(locks)
        .build()
        .unwrap()
        .run();
    let m = r.metrics.expect("metrics series requested");
    assert_eq!(m.interval(), 50);
    assert!(!m.is_empty(), "no samples taken");
    // Sample timestamps are the interval boundaries, in order.
    for (i, (at, row)) in m.rows().iter().enumerate() {
        assert_eq!(*at, 50 * i as u64);
        assert_eq!(row.len(), m.columns().len());
    }
    // The machine did stall at some point in a contended sync run.
    let stalled: u64 = m
        .columns()
        .iter()
        .filter(|c| c.starts_with("stall."))
        .filter_map(|c| m.column(c))
        .map(|col| col.iter().sum::<u64>())
        .sum();
    assert!(stalled > 0, "stall gauges never fired");
}
