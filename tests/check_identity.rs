//! The protocol sanitizer is observation-only: arming it must not change
//! the simulation in any way. This property test runs every paper workload
//! on every configuration with and without the sanitizer and requires the
//! two reports to be byte-identical (via their `Debug` rendering, which
//! covers every field) — which also implies an armed clean run reports
//! zero violations.

use proptest::prelude::*;
use ssmp::core::addr::Geometry;
use ssmp::machine::{Machine, MachineConfig};
use ssmp::workload::*;

const WORKLOADS: &[&str] = &["work-queue", "sync", "solver", "fft", "hotspot"];

fn mk(name: &str, n: usize) -> (Box<dyn ssmp::machine::op::Workload>, usize) {
    match name {
        "work-queue" => {
            let wl = WorkQueue::new(WorkQueueParams::strong(n, Grain::Medium, 2 * n));
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "sync" => {
            let wl = SyncModel::new(SyncParams::paper(n, 64, 2));
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "solver" => {
            let wl = LinearSolver::new(SolverParams::paper(n, Allocation::Packed, 3));
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "fft" => {
            let wl = FftPhases::new(FftParams::paper(n));
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        "hotspot" => {
            let wl = Hotspot::new(HotspotParams::new(n, 0.2, 32));
            let locks = wl.machine_locks();
            (Box::new(wl), locks)
        }
        other => unreachable!("unknown workload {other}"),
    }
}

fn geometry(name: &str, n: usize, cfg: &mut MachineConfig) {
    let blocks = match name {
        "solver" => SolverParams::paper(n, Allocation::Packed, 3).shared_blocks(),
        "fft" => FftParams::paper(n).shared_blocks(),
        _ => return,
    };
    cfg.geometry = Geometry::new(n, 4, blocks.max(cfg.geometry.shared_blocks));
}

fn config(idx: usize, n: usize) -> MachineConfig {
    match idx {
        0 => MachineConfig::wbi(n),
        1 => MachineConfig::wbi_backoff(n),
        2 => MachineConfig::cbl(n),
        3 => MachineConfig::sc_cbl(n),
        _ => MachineConfig::bc_cbl(n),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn armed_runs_are_report_byte_identical(
        wl_idx in 0usize..5,
        cfg_idx in 0usize..5,
        seed in 0u64..1_000,
    ) {
        let n = 4;
        let name = WORKLOADS[wl_idx];
        let run = |armed: bool| {
            let mut cfg = config(cfg_idx, n);
            cfg.seed = seed;
            geometry(name, n, &mut cfg);
            let (wl, locks) = mk(name, n);
            Machine::builder(cfg)
                .workload(wl)
                .locks(locks)
                .check(armed)
                .build()
                .unwrap()
                .run()
        };
        let armed = run(true);
        let unarmed = run(false);
        prop_assert!(
            armed.violations.is_empty(),
            "{name}/{cfg_idx}: sanitizer violations on a clean run:\n{:#?}",
            armed.violations
        );
        prop_assert_eq!(format!("{armed:?}"), format!("{unarmed:?}"));
    }
}
