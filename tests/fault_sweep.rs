//! Fault-injection sweeps: the machine must either complete with correct
//! shared memory (benign faults, or faults covered by the retry layer) or
//! end with a structured [`DeadlockReport`] — it must never hang or
//! silently corrupt data.
//!
//! The two whole-matrix sweeps (configs × retry, workloads × configs) run
//! on the `ssmp_bench::exp` engine: each cell is an independent point, a
//! failed assertion is captured as a failed point, and `expect_ok` reports
//! every failing cell at once instead of stopping at the first.

use ssmp::core::addr::SharedAddr;
use ssmp::core::primitive::LockMode;
use ssmp::engine::WatchdogVerdict;
use ssmp::machine::op::Script;
use ssmp::machine::{Machine, MachineConfig, Op, Report, RetryPolicy};
use ssmp::net::{FaultConfig, MsgDir, MsgKind};
use ssmp_bench::exp::{Experiment, PointOutput, RunnerOpts};

/// Runs with the protocol sanitizer armed: every fault scenario in this
/// file is invariant-checked (exactly-once delivery, SWMR, CBL FIFO,
/// value oracle, …), not just completion-checked.
fn run(cfg: MachineConfig, streams: Vec<Vec<Op>>, locks: usize) -> Report {
    let r = Machine::builder(cfg)
        .workload(Box::new(Script::new(streams)))
        .locks(locks)
        .check(true)
        .build()
        .unwrap()
        .run();
    assert!(
        r.violations.is_empty(),
        "sanitizer found protocol violations:\n{:#?}",
        r.violations
    );
    r
}

fn all_configs(n: usize) -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("wbi", MachineConfig::wbi(n)),
        ("wbi_backoff", MachineConfig::wbi_backoff(n)),
        ("cbl", MachineConfig::cbl(n)),
        ("sc_cbl", MachineConfig::sc_cbl(n)),
        ("bc_cbl", MachineConfig::bc_cbl(n)),
    ]
}

/// A race-free workload touching every protocol family: disjoint-word
/// shared writes, barriers, a lock-protected critical section, and a
/// cross-node read. Its final shared memory is timing-independent.
fn workload(n: usize) -> Vec<Vec<Op>> {
    (0..n)
        .map(|i| {
            vec![
                Op::SharedWriteVal(SharedAddr::new(0, i as u8), 100 + i as u64),
                Op::Barrier,
                Op::SharedRead(SharedAddr::new(0, ((i + 1) % n) as u8)),
                Op::Lock(0, LockMode::Write),
                Op::SharedWriteVal(SharedAddr::new(1, i as u8), 200 + i as u64),
                Op::Unlock(0),
                Op::Barrier,
            ]
        })
        .collect()
}

/// Duplicated and delayed messages never lose information, so every
/// configuration must complete — with or without the retry layer — and
/// reach exactly the fault-free shared memory. One sweep point per
/// (configuration, retry) cell; each point compares its faulty run to
/// its own clean run.
#[test]
fn dup_and_delay_faults_preserve_final_memory() {
    let mut exp = Experiment::new("fault-dup-delay");
    for (name, base) in all_configs(4) {
        for retry in [false, true] {
            let base = base.clone();
            exp.point(format!("{name}/retry={retry}"), move |_| {
                let clean = run(base.clone(), workload(4), 2);
                assert!(clean.deadlock.is_none(), "config {name}: clean run stuck");

                let mut cfg = base.clone();
                cfg.fault = Some(FaultConfig::uniform(0xF00D, 0.0, 0.05, 0.10));
                if retry {
                    cfg.retry = RetryPolicy::enabled();
                }
                let r = run(cfg, workload(4), 2);
                assert!(
                    r.deadlock.is_none(),
                    "config {name} (retry={retry}): dup/delay run stuck:\n{}",
                    r.deadlock.unwrap().render()
                );
                assert_eq!(
                    r.shared_memory, clean.shared_memory,
                    "config {name} (retry={retry}): faults corrupted shared memory"
                );
                let fs = r.faults.expect("fault stats must be reported");
                assert!(
                    fs.duplicated + fs.delayed > 0,
                    "config {name}: plan never fired (inspected {})",
                    fs.inspected
                );
                PointOutput::values(vec![(
                    "faults fired".into(),
                    (fs.duplicated + fs.delayed) as f64,
                )])
            });
        }
    }
    exp.run(&RunnerOpts::new()).expect_ok();
}

/// Dropped *request-leg* messages are recovered by timeout + retransmit:
/// the run completes and the shared memory matches the fault-free run.
/// (CBL-lock configurations: every wait state a request drop can strand is
/// retryable.)
#[test]
fn request_drops_recover_with_retry() {
    for (name, base) in [
        ("cbl", MachineConfig::cbl(4)),
        ("sc_cbl", MachineConfig::sc_cbl(4)),
    ] {
        let clean = run(base.clone(), workload(4), 2);

        let mut cfg = base.clone();
        let mut fc = FaultConfig::uniform(0xD00F, 0.08, 0.0, 0.0);
        fc.dirs = Some(vec![MsgDir::Request]);
        cfg.fault = Some(fc);
        cfg.retry = RetryPolicy::enabled();
        let r = run(cfg, workload(4), 2);

        assert!(
            r.deadlock.is_none(),
            "config {name}: drops not recovered:\n{}",
            r.deadlock.unwrap().render()
        );
        assert_eq!(r.shared_memory, clean.shared_memory, "config {name}");
        let fs = r.faults.expect("fault stats must be reported");
        assert!(fs.dropped > 0, "config {name}: plan never dropped anything");
        assert!(
            r.retries.iter().sum::<u64>() > 0,
            "config {name}: drops recovered without any retransmission?"
        );
        assert_eq!(
            r.counters.get("retry.retransmit"),
            r.retries.iter().sum::<u64>(),
            "config {name}: counter and per-node retry totals disagree"
        );
    }
}

/// A dropped lock request with no retry layer can never be granted: the
/// watchdog must end the run with a quiescence verdict and a diagnosis
/// naming the stranded node — instead of hanging or panicking.
#[test]
fn seeded_drop_without_retry_is_diagnosed() {
    let mut cfg = MachineConfig::cbl(2);
    cfg.fault = Some(FaultConfig::drop_nth(MsgKind::Cbl, 1));
    let streams = vec![
        vec![Op::Lock(0, LockMode::Write), Op::Unlock(0)],
        vec![
            Op::Compute(2_000),
            Op::Lock(0, LockMode::Write),
            Op::Unlock(0),
        ],
    ];
    let r = run(cfg, streams, 2);

    let d = r
        .deadlock
        .expect("dropped lock request must strand the run");
    assert_eq!(d.verdict, WatchdogVerdict::Quiescent);
    assert_eq!(r.faults.unwrap().dropped, 1);
    assert!(
        d.nodes.iter().any(|s| s.waiting.contains("LockGrant")),
        "diagnosis must name the node stuck on its lock grant:\n{}",
        d.render()
    );
    // The rendering is one screenful of text, not a panic.
    assert!(d.render().starts_with("DEADLOCK at cycle"));
}

/// An exhausted cycle budget ends the run with a `BudgetExhausted`
/// verdict rather than panicking mid-simulation.
#[test]
fn tiny_cycle_budget_reports_not_panics() {
    let mut cfg = MachineConfig::wbi(4);
    cfg.max_cycles = 300;
    let r = run(cfg, workload(4), 2);
    let d = r.deadlock.expect("300 cycles cannot finish this workload");
    assert_eq!(d.verdict, WatchdogVerdict::BudgetExhausted);
    assert_eq!(d.budget, 300);
    assert!(!d.nodes.is_empty(), "someone must still be unfinished");
}

/// With retry enabled but faults too severe (every retransmission of a
/// doomed message class also matches the plan), the retry layer gives up
/// after `max_attempts` and the watchdog still produces a diagnosis.
#[test]
fn retry_exhaustion_falls_back_to_watchdog() {
    let mut cfg = MachineConfig::cbl(2);
    // Drop *every* CBL message: retransmissions are doomed too.
    let mut fc = FaultConfig::uniform(7, 1.0, 0.0, 0.0);
    fc.kinds = Some(vec![MsgKind::Cbl]);
    cfg.fault = Some(fc);
    cfg.retry = RetryPolicy::enabled();
    let streams = vec![vec![Op::Lock(0, LockMode::Write), Op::Unlock(0)], vec![]];
    let r = run(cfg, streams, 2);

    assert!(r.deadlock.is_some(), "doomed lock request must not hang");
    assert!(
        r.counters.get("retry.exhausted") >= 1,
        "the retry layer must record giving up: {}",
        r.counters
    );
    assert!(r.retries[0] > 0, "node 0 must have retransmitted");
}

/// Two runs with identical seeds — machine seed *and* fault seed — are
/// bit-identical, faults and retries included (satellite: determinism
/// regression).
#[test]
fn fault_runs_are_deterministic() {
    let mk = || {
        let mut cfg = MachineConfig::sc_cbl(4);
        cfg.seed = 42;
        cfg.fault = Some(FaultConfig::uniform(0xABCD, 0.02, 0.05, 0.10));
        cfg.retry = RetryPolicy::enabled();
        run(cfg, workload(4), 2)
    };
    let (a, b) = (mk(), mk());
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

/// A fault-free machine reports no fault stats and zero retries — the
/// robustness layer is pay-for-use.
#[test]
fn transparent_when_no_faults_configured() {
    let r = run(MachineConfig::cbl(4), workload(4), 2);
    assert!(r.faults.is_none());
    assert_eq!(r.retries.iter().sum::<u64>(), 0);
    assert!(r.deadlock.is_none());
    assert_eq!(r.counters.get("retry.retransmit"), 0);
    assert_eq!(r.counters.get("net.dedup"), 0);
}

/// The acceptance sweep: every paper workload completes under seeded
/// dup/delay faults with retries enabled, on both paper configurations
/// (SC-CBL and BC-CBL). Statically partitioned workloads (solver, FFT,
/// sync model) have timing-independent final shared memory, which the
/// faulty run must reproduce exactly; dynamically scheduled ones
/// (work-queue task stealing, hotspot's racing hot writes) legitimately
/// diverge under perturbed timing and are checked for completion only.
#[test]
fn paper_workloads_survive_dup_delay_faults() {
    use ssmp::core::addr::Geometry;
    use ssmp::workload::*;

    let n = 4;
    // (name, final-shared-memory timing-independent?)
    let workloads: &[(&str, bool)] = &[
        ("work-queue", false),
        ("sync", true),
        ("solver", true),
        ("fft", true),
        ("hotspot", false),
    ];

    fn mk(name: &str, n: usize) -> (Box<dyn ssmp::machine::op::Workload>, usize) {
        match name {
            "work-queue" => {
                let wl = WorkQueue::new(WorkQueueParams::strong(n, Grain::Medium, 2 * n));
                let locks = wl.machine_locks();
                (Box::new(wl), locks)
            }
            "sync" => {
                let wl = SyncModel::new(SyncParams::paper(n, 64, 2));
                let locks = wl.machine_locks();
                (Box::new(wl), locks)
            }
            "solver" => {
                let wl = LinearSolver::new(SolverParams::paper(n, Allocation::Packed, 3));
                let locks = wl.machine_locks();
                (Box::new(wl), locks)
            }
            "fft" => {
                let wl = FftPhases::new(FftParams::paper(n));
                let locks = wl.machine_locks();
                (Box::new(wl), locks)
            }
            "hotspot" => {
                let wl = Hotspot::new(HotspotParams::new(n, 0.2, 32));
                let locks = wl.machine_locks();
                (Box::new(wl), locks)
            }
            other => unreachable!("unknown workload {other}"),
        }
    }

    fn geometry(name: &str, n: usize, cfg: &mut MachineConfig) {
        // the solver and FFT size the shared region themselves (as the CLI does)
        let blocks = match name {
            "solver" => SolverParams::paper(n, Allocation::Packed, 3).shared_blocks(),
            "fft" => FftParams::paper(n).shared_blocks(),
            _ => return,
        };
        cfg.geometry = Geometry::new(n, 4, blocks.max(cfg.geometry.shared_blocks));
    }

    let mut exp = Experiment::new("fault-paper-workloads");
    for &(wl_name, timing_independent) in workloads {
        for (cfg_name, base) in [
            ("sc_cbl", MachineConfig::sc_cbl(n)),
            ("bc_cbl", MachineConfig::bc_cbl(n)),
        ] {
            exp.point(format!("{wl_name}/{cfg_name}"), move |_| {
                let run_with = |cfg: MachineConfig| {
                    let (wl, locks) = mk(wl_name, n);
                    let r = Machine::builder(cfg)
                        .workload(wl)
                        .locks(locks)
                        .check(true)
                        .build()
                        .unwrap()
                        .run();
                    assert!(
                        r.violations.is_empty(),
                        "{wl_name}/{cfg_name}: sanitizer violations:\n{:#?}",
                        r.violations
                    );
                    r
                };

                let mut clean_cfg = base.clone();
                geometry(wl_name, n, &mut clean_cfg);
                let clean = run_with(clean_cfg.clone());
                assert!(
                    clean.deadlock.is_none(),
                    "{wl_name}/{cfg_name}: clean run stuck"
                );

                let mut cfg = clean_cfg;
                cfg.fault = Some(FaultConfig::uniform(0xBEEF ^ n as u64, 0.0, 0.04, 0.08));
                cfg.retry = RetryPolicy::enabled();
                let r = run_with(cfg);
                assert!(
                    r.deadlock.is_none(),
                    "{wl_name}/{cfg_name}: dup/delay faults stranded the run:\n{}",
                    r.deadlock.unwrap().render()
                );
                assert!(r.faults.as_ref().unwrap().inspected > 0);
                if timing_independent {
                    assert_eq!(
                        r.shared_memory, clean.shared_memory,
                        "{wl_name}/{cfg_name}: faults corrupted a timing-independent result"
                    );
                }
                PointOutput::from_report(r, |r| vec![("completion".into(), r.completion as f64)])
            });
        }
    }
    exp.run(&RunnerOpts::new()).expect_ok();
}
