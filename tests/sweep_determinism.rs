//! The determinism contract of the parallel experiment engine
//! (`ssmp_bench::exp`, DESIGN.md §9): a sweep's JSON artifact depends
//! only on the registered points and the master seed — never on the
//! worker-thread count, scheduling order, or wall-clock — and a point
//! that trips the deadlock watchdog or panics is reported as a failed
//! point (carrying its report) while the rest of the sweep completes.

use ssmp::machine::{Machine, MachineConfig};
use ssmp::workload::{Grain, WorkQueue, WorkQueueParams};
use ssmp_bench::exp::{derive_seed, Experiment, PointOutput, PointStatus, RunnerOpts};

/// Registers a real simulation sweep: work-queue on WBI and CBL at two
/// scales, with per-point workload seeds taken from the engine-derived
/// `ctx.seed` so the points genuinely differ.
fn simulation_experiment() -> Experiment {
    let mut exp = Experiment::new("determinism").seed(0xD5EED);
    for n in [4usize, 8] {
        for scheme in ["wbi", "cbl"] {
            exp.point_with(
                format!("{scheme}/n={n}"),
                &[("nodes", n.to_string()), ("scheme", scheme.to_string())],
                move |ctx| {
                    let cfg = match scheme {
                        "wbi" => MachineConfig::wbi(n),
                        _ => MachineConfig::cbl(n),
                    };
                    let mut p = WorkQueueParams::strong(n, Grain::Fine, 2 * n);
                    p.seed = ctx.seed;
                    let wl = WorkQueue::new(p);
                    let locks = wl.machine_locks();
                    let r = Machine::builder(cfg)
                        .workload(Box::new(wl))
                        .locks(locks)
                        .build()
                        .unwrap()
                        .run();
                    PointOutput::from_report(r, |r| {
                        vec![
                            ("completion".into(), r.completion as f64),
                            ("messages".into(), r.total_messages() as f64),
                        ]
                    })
                },
            );
        }
    }
    exp
}

#[test]
fn artifact_is_byte_identical_across_job_counts() {
    let a = simulation_experiment()
        .run(&RunnerOpts::new().jobs(1).progress(false))
        .to_json();
    let b = simulation_experiment()
        .run(&RunnerOpts::new().jobs(8).progress(false))
        .to_json();
    assert_eq!(a, b, "jobs=1 and jobs=8 must serialize identically");
    assert!(a.contains("\"schema\":\"ssmp-sweep-v1\""));
}

#[test]
fn per_point_seeds_follow_the_published_derivation() {
    let sweep = simulation_experiment().run(&RunnerOpts::new().jobs(3).progress(false));
    for (i, p) in sweep.points.iter().enumerate() {
        assert_eq!(p.seed, derive_seed(0xD5EED, i as u64));
    }
    // distinct masters give distinct per-point streams
    assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
}

#[test]
fn watchdog_trip_is_a_failed_point_and_the_sweep_continues() {
    let mut exp = Experiment::new("budget");
    // A healthy point and a budget-starved one: the watchdog fires on
    // the starved machine, and the engine must keep going.
    for (label, budget) in [("healthy", 2_000_000_000u64), ("starved", 50)] {
        exp.point(label, move |_| {
            let mut cfg = MachineConfig::cbl(4);
            cfg.max_cycles = budget;
            let wl = WorkQueue::new(WorkQueueParams::strong(4, Grain::Medium, 8));
            let locks = wl.machine_locks();
            let r = Machine::builder(cfg)
                .workload(Box::new(wl))
                .locks(locks)
                .build()
                .unwrap()
                .run();
            PointOutput::from_report(r, |r| vec![("completion".into(), r.completion as f64)])
        });
    }
    let sweep = exp.run(&RunnerOpts::new().jobs(2).progress(false));
    assert!(sweep.get("healthy").unwrap().is_ok());
    let starved = sweep.get("starved").unwrap();
    match &starved.status {
        PointStatus::Deadlock(report) => {
            assert_eq!(report.budget, 50);
            assert!(starved.error().unwrap().contains("watchdog"));
        }
        other => panic!("expected a deadlock record, got {other:?}"),
    }
    // the failure is part of the artifact, not an abort
    let json = sweep.to_json();
    assert!(json.contains("\"failed\":1"));
    assert!(json.contains("\"status\":\"deadlock\""));
}

#[test]
fn panicking_point_is_captured_without_poisoning_neighbours() {
    let mut exp = Experiment::new("panics");
    exp.point("boom", |_| panic!("synthetic failure"))
        .point("fine", |_| PointOutput::values(vec![("v".into(), 1.0)]));
    let sweep = exp.run(&RunnerOpts::new().jobs(2).progress(false));
    assert!(sweep.get("fine").unwrap().is_ok());
    let boom = sweep.get("boom").unwrap();
    assert!(matches!(&boom.status, PointStatus::Panicked(m) if m.contains("synthetic failure")));
    assert_eq!(sweep.failures().len(), 1);
}
