//! Trace-driven simulation end to end (paper §6): capture a probabilistic
//! workload once, replay the identical reference stream across machine
//! configurations, and through a JSON round trip.

use ssmp::machine::{Machine, MachineConfig};
use ssmp::workload::{SyncModel, SyncParams, Trace};

fn capture() -> Trace {
    let p = SyncParams::paper(8, 16, 3);
    Trace::capture(SyncModel::new(p), "sync-model n=8 grain=16", 42)
}

#[test]
fn replay_is_deterministic_per_config() {
    let t = capture();
    let run = |t: &Trace| {
        Machine::builder(MachineConfig::cbl(8))
            .workload(Box::new(t.replay()))
            .locks(17)
            .build()
            .unwrap()
            .run()
            .completion
    };
    assert_eq!(run(&t), run(&t));
}

#[test]
fn same_trace_across_schemes_same_work() {
    let t = capture();
    let ops = t.len() as u64;
    for cfg in [
        MachineConfig::wbi(8),
        MachineConfig::cbl(8),
        MachineConfig::sc_cbl(8),
        MachineConfig::bc_cbl(8),
    ] {
        let r = Machine::builder(cfg)
            .workload(Box::new(t.replay()))
            .locks(17)
            .build()
            .unwrap()
            .run();
        let executed: u64 = r.ops_completed.iter().sum::<u64>();
        // every node runs its stream plus the end-of-stream probe; micro-op
        // expansion (software barriers) adds more, never less
        assert!(
            executed >= ops,
            "replay must execute the whole trace: {executed} < {ops}"
        );
    }
}

#[test]
fn json_roundtrip_replays_identically() {
    let t = capture();
    let back = Trace::from_json(&t.to_json()).unwrap();
    let a = Machine::builder(MachineConfig::bc_cbl(8))
        .workload(Box::new(t.replay()))
        .locks(17)
        .build()
        .unwrap()
        .run()
        .completion;
    let b = Machine::builder(MachineConfig::bc_cbl(8))
        .workload(Box::new(back.replay()))
        .locks(17)
        .build()
        .unwrap()
        .run()
        .completion;
    assert_eq!(a, b);
}

#[test]
fn trace_exposes_scheme_differences_on_fixed_input() {
    // The entire point of trace-driven methodology: identical input, so
    // completion differences are attributable to the architecture alone.
    let t = capture();
    let wbi = Machine::builder(MachineConfig::wbi(8))
        .workload(Box::new(t.replay()))
        .locks(17)
        .build()
        .unwrap()
        .run()
        .completion;
    let cbl = Machine::builder(MachineConfig::cbl(8))
        .workload(Box::new(t.replay()))
        .locks(17)
        .build()
        .unwrap()
        .run()
        .completion;
    assert_ne!(wbi, cbl, "schemes should differ on a contended trace");
}
