//! End-to-end correctness tests: data integrity and visibility through the
//! full machine (network + directories + caches + consistency model),
//! using value-carrying writes and the final coherent memory view.

use ssmp::core::addr::{Geometry, SharedAddr};
use ssmp::core::primitive::LockMode;
use ssmp::machine::op::Script;
use ssmp::machine::{Machine, MachineConfig, Op, Report};

fn run(cfg: MachineConfig, streams: Vec<Vec<Op>>, locks: usize) -> Report {
    Machine::builder(cfg)
        .workload(Box::new(Script::new(streams)))
        .locks(locks)
        .build()
        .unwrap()
        .run()
}

fn all_configs(n: usize) -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("wbi", MachineConfig::wbi(n)),
        ("wbi_backoff", MachineConfig::wbi_backoff(n)),
        ("cbl", MachineConfig::cbl(n)),
        ("sc_cbl", MachineConfig::sc_cbl(n)),
        ("bc_cbl", MachineConfig::bc_cbl(n)),
    ]
}

/// Writes to *different words of the same block* from different nodes must
/// all survive — the §3 issue-6 lost-update / false-sharing hazard. Under
/// RIC the per-word dirty bits guarantee it; under WBI the ownership
/// protocol does.
#[test]
fn no_lost_updates_across_words() {
    for (name, cfg) in all_configs(4) {
        let streams: Vec<Vec<Op>> = (0..4)
            .map(|i| {
                vec![
                    Op::SharedWriteVal(SharedAddr::new(0, i as u8), 100 + i as u64),
                    Op::Barrier,
                ]
            })
            .collect();
        let r = run(cfg, streams, 2);
        for i in 0..4 {
            assert_eq!(
                r.shared_memory[0][i],
                100 + i as u64,
                "config {name}: word {i} lost"
            );
        }
    }
}

/// Repeated interleaved writes to disjoint words: the final value of each
/// word is the last value its writer stored.
#[test]
fn interleaved_word_writes_keep_last_value() {
    for (name, cfg) in all_configs(2) {
        let mk = |node: usize| -> Vec<Op> {
            let mut v = Vec::new();
            for round in 0..10u64 {
                v.push(Op::SharedWriteVal(
                    SharedAddr::new(3, node as u8),
                    1000 * (node as u64 + 1) + round,
                ));
            }
            v.push(Op::Barrier);
            v
        };
        let r = run(cfg, vec![mk(0), mk(1)], 2);
        assert_eq!(r.shared_memory[3][0], 1009, "config {name}");
        assert_eq!(r.shared_memory[3][1], 2009, "config {name}");
    }
}

/// Producer/consumer through a critical section: the producer's buffered
/// writes must be globally performed before the unlock completes
/// (CP-Synch flush), so the block is up to date once the consumer gets the
/// lock — under every scheme including BC.
#[test]
fn critical_section_data_is_flushed_by_unlock() {
    for (name, cfg) in all_configs(2) {
        let producer = vec![
            Op::Lock(0, LockMode::Write),
            Op::SharedWriteVal(SharedAddr::new(5, 1), 777),
            Op::Unlock(0),
        ];
        let consumer = vec![
            Op::Compute(2_000), // take the lock strictly after the producer
            Op::Lock(0, LockMode::Write),
            Op::SharedRead(SharedAddr::new(5, 1)),
            Op::Unlock(0),
        ];
        let r = run(cfg, vec![producer, consumer], 2);
        assert_eq!(r.shared_memory[5][1], 777, "config {name}");
        // Under BC, the unlock must have forced a flush.
        if name == "bc_cbl" {
            assert!(
                r.counters.get("flush.before_cp_synch") >= 1,
                "BC unlock must flush the write buffer"
            );
        }
    }
}

/// Lock-governed data written with `LockedWriteVal` travels with the lock:
/// the final lock-block contents reflect the last holder's writes.
#[test]
fn lock_block_data_travels_with_grants() {
    for (name, cfg) in all_configs(4) {
        let streams: Vec<Vec<Op>> = (0..4)
            .map(|i| {
                vec![
                    Op::Lock(0, LockMode::Write),
                    Op::LockedWriteVal(0, 1, 50 + i as u64),
                    Op::LockedWriteVal(0, (2 + (i % 2)) as u8, 90 + i as u64),
                    Op::Unlock(0),
                ]
            })
            .collect();
        let r = run(cfg, streams, 2);
        // Exactly one of the four holders was last; its word-1 value stuck.
        let w1 = r.lock_blocks[0][1];
        assert!(
            (50..54).contains(&w1),
            "config {name}: final lock word {w1} not from any holder"
        );
    }
}

/// Barriers separate phases: writes from phase 1 are visible to phase-2
/// readers on every scheme (the barrier is a CP-Synch operation).
#[test]
fn barrier_publishes_prior_writes() {
    for (name, cfg) in all_configs(4) {
        let mut streams = vec![vec![
            Op::SharedWriteVal(SharedAddr::new(7, 0), 4242),
            Op::Barrier,
        ]];
        for _ in 1..4 {
            streams.push(vec![Op::Barrier, Op::SharedRead(SharedAddr::new(7, 0))]);
        }
        let r = run(cfg, streams, 2);
        assert_eq!(r.shared_memory[7][0], 4242, "config {name}");
    }
}

/// Read locks allow concurrent readers under CBL but still exclude the
/// writer's data race: a writer that queues behind readers writes only
/// after they release.
#[test]
fn read_write_lock_ordering() {
    let readers: Vec<Vec<Op>> = (0..3)
        .map(|_| vec![Op::Lock(0, LockMode::Read), Op::Compute(100), Op::Unlock(0)])
        .collect();
    let mut streams = readers;
    streams.push(vec![
        Op::Compute(10), // arrive after the readers
        Op::Lock(0, LockMode::Write),
        Op::LockedWriteVal(0, 1, 999),
        Op::Unlock(0),
    ]);
    let r = run(MachineConfig::cbl(4), streams, 2);
    assert_eq!(r.lock_blocks[0][1], 999);
    assert_eq!(r.counters.get("lock.cbl.granted"), 4);
}

/// The full machine is deterministic: identical configuration and seed
/// produce bit-identical reports even for heavily contended runs.
#[test]
fn machine_determinism_under_contention() {
    let mk = || {
        let streams: Vec<Vec<Op>> = (0..8)
            .map(|i| {
                vec![
                    Op::Private { write: false },
                    Op::Lock(0, LockMode::Write),
                    Op::LockedWrite(0, 1),
                    Op::Compute(5 + i as u64),
                    Op::Unlock(0),
                    Op::Barrier,
                ]
            })
            .collect();
        run(MachineConfig::wbi(8), streams, 2)
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.completion, b.completion);
    assert_eq!(a.net_packets, b.net_packets);
    assert_eq!(a.shared_memory, b.shared_memory);
    assert_eq!(
        a.counters.iter().collect::<Vec<_>>(),
        b.counters.iter().collect::<Vec<_>>()
    );
}

/// Different seeds still complete with the same op counts (robustness of
/// the event loop to timing perturbations).
#[test]
fn seed_perturbation_changes_timing_not_work() {
    let mk = |seed: u64| {
        let mut cfg = MachineConfig::cbl(4);
        cfg.seed = seed;
        let streams: Vec<Vec<Op>> = (0..4)
            .map(|_| {
                vec![
                    Op::Private { write: true },
                    Op::Lock(0, LockMode::Write),
                    Op::Compute(10),
                    Op::Unlock(0),
                    Op::Barrier,
                ]
            })
            .collect();
        run(cfg, streams, 2)
    };
    let a = mk(1);
    let b = mk(2);
    assert_eq!(a.ops_completed, b.ops_completed);
    assert_eq!(a.counters.get("lock.cbl.granted"), 4);
    assert_eq!(b.counters.get("lock.cbl.granted"), 4);
}

/// RIC keeps enrolled readers fresh: after a writer's global write and a
/// barrier, an enrolled reader's *cache* already holds the new value (no
/// read miss on re-access).
#[test]
fn ric_update_push_refreshes_reader_cache() {
    let mut cfg = MachineConfig::bc_cbl(2);
    cfg.geometry = Geometry::new(2, 4, 8);
    let reader = vec![
        Op::ReadUpdate(1),
        Op::Barrier,
        Op::Compute(200), // let the push arrive
        Op::SharedRead(SharedAddr::new(1, 0)),
    ];
    let writer = vec![
        Op::Barrier,
        Op::SharedWriteVal(SharedAddr::new(1, 0), 31337),
        Op::FlushBuffer,
    ];
    let r = run(cfg, vec![reader, writer], 2);
    assert_eq!(r.shared_memory[1][0], 31337);
    assert!(r.counters.get("msg.ric.update_push") >= 1);
    // the reader's second access must have hit (pushed update, no miss)
    assert_eq!(
        r.counters.get("shared.read.miss"),
        0,
        "enrolled reader should never miss: {}",
        r.counters
    );
    assert!(r.counters.get("shared.read.hit") >= 1);
}

/// Lock-cache overflow accounting: more simultaneous locks than capacity
/// is surfaced (never silent).
#[test]
fn lock_cache_overflow_is_counted() {
    let mut cfg = MachineConfig::cbl(2);
    cfg.lock_cache_capacity = 1;
    // Node 0 holds lock 0 and then requests lock 1 (two live lock lines).
    let streams = vec![
        vec![
            Op::Lock(0, LockMode::Write),
            Op::Lock(1, LockMode::Write),
            Op::Unlock(1),
            Op::Unlock(0),
        ],
        vec![],
    ];
    let r = run(cfg, streams, 3);
    assert!(
        r.lock_cache_overflows >= 1,
        "overflow must be visible in the report"
    );
}

/// Lock-order analysis: consistent ordering yields no cycle; opposite
/// orderings across nodes flag the deadlock hazard even when this
/// particular run happened to complete.
#[test]
fn lock_order_hazard_detection() {
    // Consistent order: everyone takes 0 then 1.
    let consistent: Vec<Vec<Op>> = (0..2)
        .map(|_| {
            vec![
                Op::Lock(0, LockMode::Write),
                Op::Lock(1, LockMode::Write),
                Op::Unlock(1),
                Op::Unlock(0),
            ]
        })
        .collect();
    let r = run(MachineConfig::cbl(2), consistent, 3);
    assert_eq!(r.lock_order_edges, vec![(0, 1)]);
    assert!(r.lock_order_cycle.is_none());

    // Opposite orders, staggered so the run completes — the hazard must
    // still be flagged.
    let hazard = vec![
        vec![
            Op::Lock(0, LockMode::Write),
            Op::Lock(1, LockMode::Write),
            Op::Unlock(1),
            Op::Unlock(0),
        ],
        vec![
            Op::Compute(5_000), // let node 0 finish first
            Op::Lock(1, LockMode::Write),
            Op::Lock(0, LockMode::Write),
            Op::Unlock(0),
            Op::Unlock(1),
        ],
    ];
    let r = run(MachineConfig::cbl(2), hazard, 3);
    let cycle = r.lock_order_cycle.expect("0->1 and 1->0 must form a cycle");
    assert_eq!(cycle.len(), 2);
}
