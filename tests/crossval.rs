//! Cross-validation of the analytical models (Tables 2 and 3) against the
//! simulator: the complexity classes and orderings the paper derives must
//! emerge from the full machine.

use ssmp::analytic::{CoherenceCosts, Scenario, Scheme2, SyncScheme, Table2, Table3, Table3Params};
use ssmp::core::primitive::LockMode;
use ssmp::machine::op::Script;
use ssmp::machine::{Machine, MachineConfig, Op, Report};

fn parallel_lock(cfg: MachineConfig, t_cs: u64) -> Report {
    let n = cfg.geometry.nodes;
    let script = vec![
        vec![
            Op::Lock(0, LockMode::Write),
            Op::Compute(t_cs),
            Op::Unlock(0),
        ];
        n
    ];
    Machine::builder(cfg)
        .workload(Box::new(Script::new(script)))
        .locks(2)
        .build()
        .unwrap()
        .run()
}

/// Table 3's headline: CBL parallel-lock messages grow linearly, WBI's
/// superlinearly — in both the closed forms and the simulator.
#[test]
fn parallel_lock_complexity_classes_match() {
    let measure = |mk: fn(usize) -> MachineConfig, prefix: &str| -> Vec<f64> {
        [8usize, 16, 32]
            .iter()
            .map(|&n| parallel_lock(mk(n), 20).messages(prefix) as f64)
            .collect()
    };
    let wbi = measure(MachineConfig::wbi, "msg.wbi.");
    let cbl = measure(MachineConfig::cbl, "msg.cbl.");

    // growth factors over each doubling
    let wbi_g1 = wbi[1] / wbi[0];
    let wbi_g2 = wbi[2] / wbi[1];
    let cbl_g1 = cbl[1] / cbl[0];
    let cbl_g2 = cbl[2] / cbl[1];
    assert!(
        wbi_g1 > 2.5 && wbi_g2 > 2.5,
        "WBI must be superlinear: x{wbi_g1:.1}, x{wbi_g2:.1}"
    );
    assert!(
        (1.5..=2.5).contains(&cbl_g1) && (1.5..=2.5).contains(&cbl_g2),
        "CBL must be linear: x{cbl_g1:.1}, x{cbl_g2:.1}"
    );

    // and the analytic model agrees on the classes
    let t8 = Table3::new(Table3Params::paper(8, 20.0));
    let t16 = Table3::new(Table3Params::paper(16, 20.0));
    let a_wbi = t16.messages(Scenario::ParallelLock, SyncScheme::Wbi) as f64
        / t8.messages(Scenario::ParallelLock, SyncScheme::Wbi) as f64;
    let a_cbl = t16.messages(Scenario::ParallelLock, SyncScheme::Cbl) as f64
        / t8.messages(Scenario::ParallelLock, SyncScheme::Cbl) as f64;
    assert!(a_wbi > 3.0 && a_cbl < 2.5);
}

/// CBL parallel-lock *measured* message count stays within a small factor
/// of the printed 6n−3 form.
#[test]
fn cbl_parallel_lock_messages_near_closed_form() {
    for n in [8usize, 16, 32] {
        let measured = parallel_lock(MachineConfig::cbl(n), 20).messages("msg.cbl.") as f64;
        let analytic = (6 * n - 3) as f64;
        let ratio = measured / analytic;
        assert!(
            (0.4..=1.2).contains(&ratio),
            "n={n}: measured {measured} vs 6n-3 = {analytic} (ratio {ratio:.2})"
        );
    }
}

/// Table 2's ordering on the simulator: per-iteration solver traffic is
/// read-update < inv-I < inv-II (message counts).
#[test]
fn solver_traffic_ordering_matches_table2() {
    use ssmp::core::addr::Geometry;
    use ssmp::workload::{Allocation, LinearSolver, SolverParams};
    let n = 16;
    let per_iter = |alloc: Allocation, ric: bool| -> f64 {
        let run = |iters: usize| -> u64 {
            let p = SolverParams::paper(n, alloc, iters);
            let mut cfg = if ric {
                MachineConfig::sc_cbl(n)
            } else {
                MachineConfig::wbi(n)
            };
            cfg.geometry = Geometry::new(n, 4, p.shared_blocks().max(1));
            let wl = LinearSolver::new(p);
            let locks = wl.machine_locks();
            let r = Machine::builder(cfg)
                .workload(Box::new(wl))
                .locks(locks)
                .build()
                .unwrap()
                .run();
            r.messages(if ric { "msg.ric." } else { "msg.wbi." })
        };
        (run(6) - run(2)) as f64 / 4.0
    };
    let ru = per_iter(Allocation::Packed, true);
    let i1 = per_iter(Allocation::Packed, false);
    let i2 = per_iter(Allocation::Padded, false);
    assert!(ru < i1, "read-update {ru} must beat inv-I {i1}");
    assert!(ru < i2, "read-update {ru} must beat inv-II {i2}");

    // the closed forms order the same way at these parameters
    let t = Table2::new(n as u32, 4);
    let c = CoherenceCosts::unit();
    assert!(
        t.iteration(Scheme2::ReadUpdate, c) < t.iteration(Scheme2::InvII, c),
        "analytic ordering must agree"
    );
}

/// The time advantage of CBL under contention grows with n (Table 3's
/// O(n²)/O(n) ratio), both analytically and in simulation.
#[test]
fn contention_advantage_grows_with_scale() {
    let adv = |n: usize| -> f64 {
        let wbi = parallel_lock(MachineConfig::wbi(n), 20).completion as f64;
        let cbl = parallel_lock(MachineConfig::cbl(n), 20).completion as f64;
        wbi / cbl
    };
    let a8 = adv(8);
    let a32 = adv(32);
    assert!(
        a32 > a8,
        "advantage must grow with contention: n=8 {a8:.1}x, n=32 {a32:.1}x"
    );
    let t8 = Table3::new(Table3Params::paper(8, 20.0));
    let t32 = Table3::new(Table3Params::paper(32, 20.0));
    let an8 = t8.time(Scenario::ParallelLock, SyncScheme::Wbi)
        / t8.time(Scenario::ParallelLock, SyncScheme::Cbl);
    let an32 = t32.time(Scenario::ParallelLock, SyncScheme::Wbi)
        / t32.time(Scenario::ParallelLock, SyncScheme::Cbl);
    assert!(an32 > an8);
}

/// Hardware barrier messages scale linearly (Table 3 notify = n); the
/// software barrier's traffic grows much faster.
#[test]
fn barrier_message_scaling() {
    let barrier = |cfg: MachineConfig| -> u64 {
        let n = cfg.geometry.nodes;
        let script: Vec<Vec<Op>> = (0..n)
            .map(|i| vec![Op::Compute(1 + i as u64), Op::Barrier])
            .collect();
        Machine::builder(cfg)
            .workload(Box::new(Script::new(script)))
            .locks(2)
            .build()
            .unwrap()
            .run()
            .messages("msg.")
    };
    let hw8 = barrier(MachineConfig::cbl(8)) as f64;
    let hw32 = barrier(MachineConfig::cbl(32)) as f64;
    let sw8 = barrier(MachineConfig::wbi(8)) as f64;
    let sw32 = barrier(MachineConfig::wbi(32)) as f64;
    assert!(
        hw32 / hw8 < 4.5,
        "hardware barrier must scale linearly: {hw8} -> {hw32}"
    );
    assert!(
        sw32 / sw8 > hw32 / hw8,
        "software barrier must scale worse: sw {sw8}->{sw32}, hw {hw8}->{hw32}"
    );
    assert!(sw8 > hw8, "software barrier costs more at every size");
}

/// The analytic hotspot model's saturation trend matches the simulator:
/// below the predicted saturation point completion grows mildly with the
/// hot fraction; past it, completion is dominated by the serialised hot
/// module (≈ total hot requests × service time).
#[test]
fn hotspot_saturation_matches_queueing_model() {
    use ssmp::analytic::HotspotModel;
    use ssmp::workload::{Hotspot, HotspotParams};

    let n = 64;
    let refs = 200;
    let run = |hot: f64| -> u64 {
        let wl = Hotspot::new(HotspotParams::new(n, hot, refs));
        let locks = wl.machine_locks();
        Machine::builder(MachineConfig::sc_cbl(n))
            .workload(Box::new(wl))
            .locks(locks)
            .build()
            .unwrap()
            .run()
            .completion
    };
    // service ≈ t_D + t_m = 5 cycles; request rate ≈ 1 per (transit+service)
    let service = 5.0;
    let rate = 0.05;
    let low = HotspotModel::new(n, 0.05, rate, service);
    let high = HotspotModel::new(n, 1.0, rate, service);
    assert!(!low.saturated());
    assert!(high.saturated());

    let c_low = run(0.05);
    let c_high = run(1.0);
    // saturated: every hot request serialises through one module
    let serial_floor = (n * refs) as f64 * service;
    assert!(
        c_high as f64 >= 0.9 * serial_floor,
        "saturated run ({c_high}) must approach the serial floor ({serial_floor})"
    );
    assert!(
        (c_low as f64) < 0.2 * serial_floor,
        "unsaturated run ({c_low}) must stay well below the serial floor"
    );
}
