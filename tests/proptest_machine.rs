//! Machine-level property tests: randomly generated well-formed programs
//! must complete (no deadlock, no panic), execute exactly once, and behave
//! deterministically, on every machine configuration.

use proptest::prelude::*;
use ssmp::core::addr::SharedAddr;
use ssmp::core::primitive::LockMode;
use ssmp::machine::op::Script;
use ssmp::machine::{Machine, MachineConfig, Op};

/// A generator of well-formed per-node programs: balanced, non-nested
/// lock/unlock pairs; locked accesses only inside critical sections; the
/// same number of barriers on every node; semaphores pre-credited so P can
/// always eventually succeed.
fn program_strategy(nodes: usize, barriers: usize) -> impl Strategy<Value = Vec<Vec<Op>>> {
    let node_prog = proptest::collection::vec(0u8..8, 4..24).prop_map(move |codes| {
        let mut segments: Vec<Vec<Op>> = vec![Vec::new()];
        for (i, c) in codes.iter().enumerate() {
            let seg = segments.last_mut().expect("non-empty");
            match c % 8 {
                0 => seg.push(Op::Compute(1 + (i as u64 % 7))),
                1 => seg.push(Op::Private { write: i % 3 == 0 }),
                2 => seg.push(Op::SharedRead(SharedAddr::new(i % 8, (i % 4) as u8))),
                3 => seg.push(Op::SharedWrite(SharedAddr::new(i % 8, (i % 4) as u8))),
                4 => {
                    // a complete critical section
                    let lock = i % 2;
                    seg.push(Op::Lock(lock, LockMode::Write));
                    seg.push(Op::LockedWrite(lock, 1 + (i % 3) as u8));
                    seg.push(Op::LockedRead(lock, 1));
                    seg.push(Op::Unlock(lock));
                }
                5 => {
                    let lock = i % 2;
                    seg.push(Op::Lock(lock, LockMode::Read));
                    seg.push(Op::LockedRead(lock, 2));
                    seg.push(Op::Unlock(lock));
                }
                6 => {
                    seg.push(Op::SemP(0));
                    seg.push(Op::Compute(2));
                    seg.push(Op::SemV(0));
                }
                _ => segments.push(Vec::new()), // segment boundary (barrier slot)
            }
        }
        // emit exactly `barriers` barriers: one after each of the first
        // `barriers` segments, padding with trailing barriers if there are
        // fewer segment boundaries than required
        let mut prog = Vec::new();
        let mut emitted = 0;
        for seg in &segments {
            prog.extend(seg.iter().copied());
            if emitted < barriers {
                prog.push(Op::Barrier);
                emitted += 1;
            }
        }
        while emitted < barriers {
            prog.push(Op::Barrier);
            emitted += 1;
        }
        prog
    });
    proptest::collection::vec(node_prog, nodes..=nodes)
}

fn all_configs(n: usize) -> Vec<MachineConfig> {
    vec![
        MachineConfig::wbi(n),
        MachineConfig::wbi_backoff(n),
        MachineConfig::cbl(n),
        MachineConfig::sc_cbl(n),
        MachineConfig::bc_cbl(n),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any well-formed program completes on every configuration, with both
    /// locks granted and released in balance.
    #[test]
    fn random_programs_never_deadlock(
        streams in program_strategy(4, 2),
        cfg_idx in 0usize..5,
    ) {
        let mut cfg = all_configs(4).swap_remove(cfg_idx);
        cfg.max_cycles = 50_000_000;
        let ops_total: usize = streams.iter().map(|s| s.len()).sum();
        let wl = Script::new(streams);
        let r = Machine::builder(cfg).workload(Box::new(wl)).locks(3).semaphores(&[64]).build().unwrap()
            .run();
        // Budget/quiescence overrun no longer panics — it produces a
        // structured diagnosis, which a well-formed program must never do.
        prop_assert!(
            r.deadlock.is_none(),
            "watchdog fired on a well-formed program: {:?}",
            r.deadlock
        );
        let executed: u64 = r.ops_completed.iter().sum();
        prop_assert!(executed as usize >= ops_total);
        // lock bookkeeping balances
        let cbl_grants = r.counters.get("lock.cbl.granted");
        let tts_acq = r.counters.get("lock.tts.acquired");
        let releases = r.counters.get("lock.cbl.release_complete")
            + r.counters.get("lock.cbl.release_forwarded")
            + r.counters.get("lock.tts.release_local")
            + r.counters.get("lock.tts.release_remote");
        // CBL release completions are counted when the directory ack lands;
        // the machine stops as soon as every node retires, so each node's
        // final unlock may still be in flight (locks are non-nested, so at
        // most one per node).
        let acq = cbl_grants + tts_acq;
        prop_assert!(releases <= acq, "more releases ({releases}) than acquisitions ({acq})");
        prop_assert!(
            acq - releases <= 4,
            "unbalanced beyond in-flight finals: acq {acq}, rel {releases}"
        );
    }

    /// The same program and seed give bit-identical outcomes.
    #[test]
    fn random_programs_deterministic(
        streams in program_strategy(4, 1),
        cfg_idx in 0usize..5,
    ) {
        let run = || {
            let cfg = all_configs(4).swap_remove(cfg_idx);
            Machine::builder(cfg).workload(Box::new(Script::new(streams.clone()))).locks(3).semaphores(&[64]).build().unwrap()
                .run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.completion, b.completion);
        prop_assert_eq!(a.net_packets, b.net_packets);
        prop_assert_eq!(a.shared_memory, b.shared_memory);
    }
}
