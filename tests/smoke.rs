//! Cross-crate smoke tests: every workload on every relevant configuration.

use ssmp_machine::{Machine, MachineConfig};
use ssmp_workload::*;

#[test]
fn sync_model_all_schemes() {
    for nodes in [2usize, 8] {
        for cfg in [
            MachineConfig::wbi(nodes),
            MachineConfig::wbi_backoff(nodes),
            MachineConfig::cbl(nodes),
            MachineConfig::sc_cbl(nodes),
            MachineConfig::bc_cbl(nodes),
        ] {
            let wl = SyncModel::new(SyncParams::paper(nodes, 16, 4));
            let locks = wl.machine_locks();
            let r = Machine::builder(cfg)
                .workload(Box::new(wl))
                .locks(locks)
                .build()
                .unwrap()
                .run();
            assert!(r.completion > 0);
        }
    }
}

#[test]
fn work_queue_all_schemes() {
    for cfg in [
        MachineConfig::wbi(8),
        MachineConfig::wbi_backoff(8),
        MachineConfig::cbl(8),
        MachineConfig::sc_cbl(8),
        MachineConfig::bc_cbl(8),
    ] {
        let wl = WorkQueue::new(WorkQueueParams::paper(8, Grain::Fine, 4));
        let locks = wl.machine_locks();
        let r = Machine::builder(cfg)
            .workload(Box::new(wl))
            .locks(locks)
            .build()
            .unwrap()
            .run();
        assert!(r.completion > 0, "completion 0");
    }
}

#[test]
fn solver_ric_vs_wbi() {
    for alloc in [Allocation::Packed, Allocation::Padded] {
        let p = SolverParams::paper(8, alloc, 3);
        let mut cfg = MachineConfig::sc_cbl(8);
        cfg.geometry = ssmp_core::addr::Geometry::new(8, 4, p.shared_blocks().max(1));
        let wl = LinearSolver::new(p.clone());
        let locks = wl.machine_locks();
        let r = Machine::builder(cfg)
            .workload(Box::new(wl))
            .locks(locks)
            .build()
            .unwrap()
            .run();
        assert!(r.completion > 0);

        let mut cfg = MachineConfig::wbi(8);
        cfg.geometry = ssmp_core::addr::Geometry::new(8, 4, p.shared_blocks().max(1));
        let wl = LinearSolver::new(p);
        let locks = wl.machine_locks();
        let r = Machine::builder(cfg)
            .workload(Box::new(wl))
            .locks(locks)
            .build()
            .unwrap()
            .run();
        assert!(r.completion > 0);
    }
}

#[test]
fn fft_runs_on_ric() {
    let p = FftParams::paper(8);
    let mut cfg = MachineConfig::bc_cbl(8);
    cfg.geometry = ssmp_core::addr::Geometry::new(8, 4, p.shared_blocks());
    let wl = FftPhases::new(p);
    let locks = wl.machine_locks();
    let r = Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(locks)
        .build()
        .unwrap()
        .run();
    assert!(r.completion > 0);
    assert!(
        r.counters.get("msg.ric.head_change") + r.counters.get("msg.ric.splice") > 0,
        "reset-update must generate list-maintenance traffic"
    );
}
