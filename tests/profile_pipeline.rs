//! End-to-end checks of the protocol-level profiler:
//!
//! * live `ProfileSink` and offline `Profile::from_jsonl` over the same
//!   trace produce byte-identical `ssmp-profile-v1` JSON;
//! * profiled runs are byte-deterministic across repeated seeded runs;
//! * per-node stall attribution sums exactly to the report's stalled
//!   cycles (`cycles − busy`) on every paper workload;
//! * the false-sharing detector flags SOR's packed boundary layout under
//!   write-invalidate and stays silent under RIC's per-word dirty bits;
//! * the `ssmp analyze` table render matches a golden file on a small
//!   fixed-seed hotspot run.

use ssmp::engine::trace::MemorySink;
use ssmp::engine::{TraceFilter, Tracer};
use ssmp::machine::{Machine, MachineConfig, Report, Workload};
use ssmp::profile::Profile;
use ssmp::workload::{
    FftParams, FftPhases, Grain, Hotspot, HotspotParams, LinearSolver, SolverParams, Sor,
    SorParams, SyncModel, SyncParams, WorkQueue, WorkQueueParams,
};

fn paper_workloads(nodes: usize) -> Vec<(&'static str, Box<dyn Workload>, usize)> {
    let wq = WorkQueue::new(WorkQueueParams::paper(nodes, Grain::Fine, 3 * nodes));
    let wq_locks = wq.machine_locks();
    let sync = SyncModel::new(SyncParams::paper(nodes, 40, 2));
    let sync_locks = sync.machine_locks();
    let solver = LinearSolver::new(SolverParams::paper(
        nodes,
        ssmp::workload::Allocation::Packed,
        3,
    ));
    let solver_locks = solver.machine_locks();
    let fft = FftPhases::new(FftParams::paper(nodes));
    let fft_locks = fft.machine_locks();
    let hot = Hotspot::new(HotspotParams::hot_locks(nodes, 0.6, 60));
    let hot_locks = hot.machine_locks();
    vec![
        ("work-queue", Box::new(wq) as Box<dyn Workload>, wq_locks),
        ("sync", Box::new(sync), sync_locks),
        ("solver", Box::new(solver), solver_locks),
        ("fft", Box::new(fft), fft_locks),
        ("hotspot", Box::new(hot), hot_locks),
    ]
}

fn fit_geometry(cfg: &mut MachineConfig, name: &str, nodes: usize) {
    let blocks = match name {
        "solver" => {
            SolverParams::paper(nodes, ssmp::workload::Allocation::Packed, 3).shared_blocks()
        }
        "fft" => FftParams::paper(nodes).shared_blocks(),
        _ => cfg.geometry.shared_blocks,
    };
    cfg.geometry =
        ssmp::core::addr::Geometry::new(nodes, 4, blocks.max(cfg.geometry.shared_blocks));
}

/// Runs `wl` profiled with a memory sink attached; returns the report
/// (carrying the live profile) and the captured event stream.
fn profiled_run(
    cfg: MachineConfig,
    wl: Box<dyn Workload>,
    locks: usize,
) -> (Report, Vec<ssmp::engine::TraceEvent>) {
    let (sink, events) = MemorySink::new();
    let mut tracer = Tracer::new(TraceFilter::all());
    tracer.add_sink(sink);
    let r = Machine::builder(cfg)
        .workload(wl)
        .locks(locks)
        .tracer(tracer)
        .profile(true)
        .build()
        .unwrap()
        .run();
    let evs = events.borrow().clone();
    (r, evs)
}

fn jsonl_of(events: &[ssmp::engine::TraceEvent]) -> String {
    let mut s = String::new();
    for e in events {
        s.push_str(&e.to_jsonl());
        s.push('\n');
    }
    s
}

#[test]
fn live_sink_equals_offline_analyze_byte_for_byte() {
    for cfg in [
        MachineConfig::wbi(4),
        MachineConfig::cbl(4),
        MachineConfig::bc_cbl(4),
    ] {
        for (name, wl, locks) in paper_workloads(4) {
            let mut cfg = cfg.clone();
            fit_geometry(&mut cfg, name, 4);
            let (r, events) = profiled_run(cfg, wl, locks);
            let live = r.profile.as_ref().expect("profiled run carries profile");
            let offline = Profile::from_jsonl(std::io::Cursor::new(jsonl_of(&events))).unwrap();
            assert_eq!(
                live.to_json().render(),
                offline.to_json().render(),
                "live/offline divergence on {name}"
            );
            assert_eq!(live, &offline, "{name}: structural divergence");
        }
    }
}

#[test]
fn profiled_runs_are_byte_deterministic() {
    let run = || {
        let mut cfg = MachineConfig::bc_cbl(4);
        fit_geometry(&mut cfg, "solver", 4);
        let wl = LinearSolver::new(SolverParams::paper(
            4,
            ssmp::workload::Allocation::Packed,
            3,
        ));
        let locks = wl.machine_locks();
        let (r, _) = profiled_run(cfg, Box::new(wl), locks);
        r.profile.unwrap().to_json().render()
    };
    assert_eq!(run(), run(), "repeated seeded runs must render identically");
}

#[test]
fn stall_attribution_sums_to_cycles_minus_busy_on_paper_workloads() {
    for cfg in [
        MachineConfig::wbi(4),
        MachineConfig::wbi_backoff(4),
        MachineConfig::cbl(4),
        MachineConfig::sc_cbl(4),
        MachineConfig::bc_cbl(4),
    ] {
        for (name, wl, locks) in paper_workloads(4) {
            let mut cfg = cfg.clone();
            fit_geometry(&mut cfg, name, 4);
            let (r, _) = profiled_run(cfg, wl, locks);
            assert!(r.deadlock.is_none(), "{name} deadlocked");
            let p = r.profile.as_ref().unwrap();
            for n in 0..4i64 {
                let np = p
                    .nodes
                    .get(&n)
                    .unwrap_or_else(|| panic!("{name}: node {n} missing from profile"));
                let bucket_sum: u64 = np.stalls.values().sum();
                assert_eq!(
                    bucket_sum, np.stall_total,
                    "{name} node {n}: buckets don't sum to stall_total"
                );
                assert_eq!(
                    np.stall_total, r.stalled_cycles[n as usize],
                    "{name} node {n}: profile disagrees with report stalls"
                );
                assert_eq!(
                    np.stall_total,
                    np.cycles - np.busy(),
                    "{name} node {n}: stalls != cycles - busy"
                );
            }
        }
    }
}

#[test]
fn false_sharing_flagged_under_wbi_silent_under_ric() {
    let run = |cfg: MachineConfig| {
        let nodes = cfg.geometry.nodes;
        let wl = Sor::new(SorParams::packed(nodes, 4));
        let locks = wl.machine_locks();
        let (r, _) = profiled_run(cfg, Box::new(wl), locks);
        assert!(r.deadlock.is_none());
        r.profile.unwrap()
    };
    let geom = |mut cfg: MachineConfig| {
        cfg.geometry = ssmp::core::addr::Geometry::new(4, 4, 8);
        cfg
    };
    let wbi = run(geom(MachineConfig::wbi(4)));
    assert!(
        !wbi.false_sharing_lines().is_empty(),
        "packed SOR under write-invalidate must flag at least one line"
    );
    let ric = run(geom(MachineConfig::bc_cbl(4)));
    assert!(
        ric.false_sharing_lines().is_empty(),
        "RIC's per-word dirty bits must flag nothing, got {:?}",
        ric.false_sharing_lines()
    );
}

#[test]
fn hot_lock_run_reports_latency_histogram_and_depth_timeline() {
    let wl = Hotspot::new(HotspotParams::hot_locks(4, 0.8, 80));
    let locks = wl.machine_locks();
    let (r, _) = profiled_run(MachineConfig::cbl(4), Box::new(wl), locks);
    let p = r.profile.as_ref().unwrap();
    let hot = p.locks.get(&0).expect("hot lock profiled");
    assert_eq!(hot.kind, "cbl");
    assert!(hot.acquires > 0);
    assert!(hot.latency.count() == hot.acquires);
    assert!(
        !hot.depth_timeline.is_empty(),
        "contended CBL lock must show queue-depth changes"
    );
    assert!(hot.depth_max() > 0);
    let (fmax, fmean) = hot.fairness();
    assert!(fmax as f64 >= fmean && fmean > 0.0);
}

#[test]
fn analyze_table_matches_golden_file() {
    let wl = Hotspot::new(HotspotParams::hot_locks(4, 0.8, 40));
    let locks = wl.machine_locks();
    let (r, _) = profiled_run(MachineConfig::bc_cbl(4), Box::new(wl), locks);
    let table = r.profile.unwrap().render_table(4);
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/analyze_hotspot.txt"
    );
    if std::env::var_os("SSMP_BLESS").is_some() {
        std::fs::write(golden_path, &table).unwrap();
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — regenerate with SSMP_BLESS=1");
    assert_eq!(
        table, golden,
        "analyze table drifted from tests/golden/analyze_hotspot.txt \
         (regenerate with SSMP_BLESS=1 if intentional)"
    );
}
