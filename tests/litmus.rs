//! Memory-ordering litmus tests: the classic message-passing pattern
//! through the full machine, under sequential vs. buffered consistency.
//!
//! Under **SC** every global write stalls the processor until performed,
//! so program order is preserved globally: a reader that observes the flag
//! must observe the data.
//!
//! Under **BC** global writes drain asynchronously through the write
//! buffer; without an intervening `FLUSH-BUFFER` (or a CP-Synch
//! operation), a reader can observe the flag before the data — the weak
//! behaviour the model *permits*. Inserting the flush (as the paper's
//! software discipline requires before signalling) restores order.

use ssmp::core::addr::{Geometry, SharedAddr};
use ssmp::machine::op::Script;
use ssmp::machine::{Machine, MachineConfig, Op, Report};

// DATA is homed at the reader's module (block 1 → node 1 of 2); the pad
// writes share that home so DATA's drain queues behind them.
const DATA: SharedAddr = SharedAddr { block: 1, word: 0 };
// The flag is homed at the writer's own module (block 2 → node 0), so the
// flag write commits immediately.
const FLAG: SharedAddr = SharedAddr { block: 2, word: 0 };

/// Writer publishes data then flag; the reader holds an *enrolled cached
/// copy* of DATA (kept fresh by update pushes) and polls the flag with
/// `READ-GLOBAL` (always memory-fresh). Under BC without a flush, the flag
/// can commit while DATA still sits in the write buffer behind the pad
/// writes — the reader then observes flag = 1 with a stale cached DATA.
fn message_passing(mut cfg: MachineConfig, flush_between: bool, pad_writes: usize) -> Report {
    cfg.record_reads = true;
    cfg.geometry = Geometry::new(cfg.geometry.nodes, 4, 32);
    let mut writer = Vec::new();
    writer.push(Op::Compute(50)); // let the reader enroll first
                                  // Pad the write buffer with writes to DATA's home module so DATA's
                                  // commit is delayed behind their service times.
    for i in 0..pad_writes {
        let block = 1 + 2 * (1 + i % 4); // odd blocks: home = node 1
        writer.push(Op::SharedWriteVal(SharedAddr::new(block, (i % 4) as u8), 5));
    }
    writer.push(Op::SharedWriteVal(DATA, 1));
    if flush_between {
        writer.push(Op::FlushBuffer);
    }
    writer.push(Op::SharedWriteVal(FLAG, 1));
    writer.push(Op::FlushBuffer);

    let reader = vec![
        Op::SharedRead(DATA),         // enroll; cached copy now live
        Op::SpinUntilGlobal(FLAG, 1), // poll memory until the flag is set
        Op::SharedRead(DATA),         // cached: fresh only if already pushed
    ];

    let wl = Script::new(vec![writer, reader]);
    Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(1)
        .build()
        .unwrap()
        .run()
}

/// Extracts the reader's (node 1) observation: the data value read at the
/// first poll where the flag was already 1, if any.
fn observed_data_after_flag(r: &Report) -> Option<(u64, u64)> {
    let reads: Vec<_> = r.read_log.iter().filter(|(n, ..)| *n == 1).collect();
    let first_flag_set = reads
        .iter()
        .position(|(_, b, w, v)| *b == FLAG.block && *w == FLAG.word && *v == 1)?;
    let data = reads
        .iter()
        .skip(first_flag_set)
        .find(|(_, b, w, _)| *b == DATA.block && *w == DATA.word)?;
    Some((1, data.3))
}

#[test]
fn sc_forbids_message_passing_violation() {
    for pad in [0, 8, 16] {
        let r = message_passing(MachineConfig::sc_cbl(2), false, pad);
        if let Some((_, data)) = observed_data_after_flag(&r) {
            assert_eq!(
                data, 1,
                "SC must not let the flag overtake the data (pad={pad})"
            );
        }
    }
}

/// SC stalls on every global write, so the writes commit in program order
/// and the update push precedes any flag observation.
#[test]
fn sc_orders_even_cached_reads() {
    let r = message_passing(MachineConfig::sc_cbl(2), false, 16);
    let (_, data) = observed_data_after_flag(&r).expect("flag must be observed");
    assert_eq!(data, 1);
}

#[test]
fn bc_with_flush_restores_order() {
    for pad in [0, 8, 16, 32] {
        let r = message_passing(MachineConfig::bc_cbl(2), true, pad);
        if let Some((_, data)) = observed_data_after_flag(&r) {
            assert_eq!(
                data, 1,
                "FLUSH-BUFFER before the flag write must order the writes (pad={pad})"
            );
        }
    }
}

#[test]
fn bc_without_flush_can_reorder() {
    // The weak behaviour is *permitted*, not required; hunt for a
    // parameterisation that exposes it to prove the model is actually
    // weaker than SC.
    let mut violated = false;
    for pad in [4usize, 8, 16, 24, 32, 48, 64] {
        let r = message_passing(MachineConfig::bc_cbl(2), false, pad);
        if let Some((_, data)) = observed_data_after_flag(&r) {
            if data == 0 {
                violated = true;
                break;
            }
        }
    }
    assert!(
        violated,
        "buffered consistency should expose the data/flag reorder for some padding"
    );
}

#[test]
fn read_log_is_populated_and_ordered() {
    let r = message_passing(MachineConfig::sc_cbl(2), false, 0);
    assert!(!r.read_log.is_empty());
    // all recorded reads belong to the reader here
    assert!(r.read_log.iter().all(|(n, ..)| *n == 1));
    // flag observations are monotone (0…0 then 1…1): memory values only
    // move forward for a single writer
    let flags: Vec<u64> = r
        .read_log
        .iter()
        .filter(|(_, b, ..)| *b == FLAG.block)
        .map(|(.., v)| *v)
        .collect();
    let mut sorted = flags.clone();
    sorted.sort_unstable();
    assert_eq!(flags, sorted, "flag went backwards: {flags:?}");
}

#[test]
fn record_reads_off_keeps_log_empty() {
    let mut cfg = MachineConfig::sc_cbl(2);
    cfg.record_reads = false;
    let wl = Script::new(vec![
        vec![Op::SharedWriteVal(DATA, 1)],
        vec![Op::SharedRead(DATA)],
    ]);
    let r = Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(1)
        .build()
        .unwrap()
        .run();
    assert!(r.read_log.is_empty());
}
