//! The whole paper in one CI test file: miniature versions of every
//! evaluation artifact, with the headline qualitative claims asserted —
//! the regression net under the experiment harness.

use ssmp::core::addr::Geometry;
use ssmp::machine::{Machine, MachineConfig};
use ssmp::workload::*;

fn work_queue(cfg: MachineConfig, grain: Grain, total: usize) -> u64 {
    let n = cfg.geometry.nodes;
    let wl = WorkQueue::new(WorkQueueParams::strong(n, grain, total));
    let locks = wl.machine_locks();
    Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(locks)
        .build()
        .unwrap()
        .run()
        .completion
}

fn sync_model(cfg: MachineConfig, grain: usize, tasks: usize) -> u64 {
    let n = cfg.geometry.nodes;
    let wl = SyncModel::new(SyncParams::paper(n, grain, tasks));
    let locks = wl.machine_locks();
    Machine::builder(cfg)
        .workload(Box::new(wl))
        .locks(locks)
        .build()
        .unwrap()
        .run()
        .completion
}

/// Figure 4's four claims at reduced scale (n = 16, medium grain).
#[test]
fn figure4_claims() {
    let n = 16;
    let total = 48;
    let q_wbi = work_queue(MachineConfig::wbi(n), Grain::Medium, total);
    let q_backoff = work_queue(MachineConfig::wbi_backoff(n), Grain::Medium, total);
    let q_cbl = work_queue(MachineConfig::cbl(n), Grain::Medium, total);
    // CBL beats backoff beats plain WBI on the work queue
    assert!(q_cbl < q_backoff, "CBL {q_cbl} vs backoff {q_backoff}");
    assert!(q_backoff < q_wbi, "backoff {q_backoff} vs WBI {q_wbi}");
    assert!(q_wbi > 3 * q_cbl, "the gap must be large at n=16");

    // sync model: the two schemes stay comparable (within 2x)
    let s_wbi = sync_model(MachineConfig::wbi(n), 256, 4);
    let s_cbl = sync_model(MachineConfig::cbl(n), 256, 4);
    let ratio = s_wbi as f64 / s_cbl as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "sync model: WBI {s_wbi} vs CBL {s_cbl} must be comparable"
    );
}

/// Figure 5's claim: at coarse grain the WBI work-queue curve is U-shaped
/// (improves before it degrades); CBL keeps improving.
#[test]
fn figure5_claims() {
    let total = 64;
    let wbi: Vec<u64> = [4usize, 8, 32]
        .iter()
        .map(|&n| work_queue(MachineConfig::wbi(n), Grain::Coarse, total))
        .collect();
    assert!(wbi[1] < wbi[0], "WBI must improve 4 -> 8 at coarse grain");
    assert!(wbi[2] > wbi[1], "WBI must degrade by 32");

    let cbl: Vec<u64> = [4usize, 32]
        .iter()
        .map(|&n| work_queue(MachineConfig::cbl(n), Grain::Coarse, total))
        .collect();
    assert!(cbl[1] < cbl[0], "CBL keeps improving with scale");
}

/// Figures 6–7: BC beats SC on average, modestly.
#[test]
fn figures67_claims() {
    let total = 48;
    let mut bc_total = 0.0;
    let mut sc_total = 0.0;
    for n in [4usize, 8, 16] {
        for grain in [Grain::Fine, Grain::Medium] {
            sc_total += work_queue(MachineConfig::sc_cbl(n), grain, total) as f64;
            bc_total += work_queue(MachineConfig::bc_cbl(n), grain, total) as f64;
        }
    }
    let improvement = (sc_total - bc_total) / sc_total;
    assert!(
        improvement > 0.0,
        "BC must win on average: SC {sc_total}, BC {bc_total}"
    );
    assert!(
        improvement < 0.35,
        "the paper calls the improvement modest; got {:.0}%",
        improvement * 100.0
    );
}

/// Table 2's claim on the solver: read-update's total traffic beats both
/// invalidation variants.
#[test]
fn table2_claims() {
    let n = 16;
    let run = |alloc: Allocation, ric: bool| -> u64 {
        let p = SolverParams::paper(n, alloc, 4);
        let mut cfg = if ric {
            MachineConfig::sc_cbl(n)
        } else {
            MachineConfig::wbi(n)
        };
        cfg.geometry = Geometry::new(n, 4, p.shared_blocks().max(1));
        let wl = LinearSolver::new(p);
        let locks = wl.machine_locks();
        Machine::builder(cfg)
            .workload(Box::new(wl))
            .locks(locks)
            .build()
            .unwrap()
            .run()
            .total_messages()
    };
    let ru = run(Allocation::Packed, true);
    let inv1 = run(Allocation::Packed, false);
    let inv2 = run(Allocation::Padded, false);
    assert!(
        ru < inv1 && ru < inv2,
        "read-update {ru} vs inv-I {inv1}, inv-II {inv2}"
    );
}

/// Table 3's claim: O(n) vs O(n²) parallel-lock traffic, verified by
/// growth factors on the real machine.
#[test]
fn table3_claims() {
    use ssmp::core::primitive::LockMode;
    use ssmp::machine::op::Script;
    use ssmp::machine::Op;
    let contend = |cfg: MachineConfig| -> u64 {
        let n = cfg.geometry.nodes;
        let script = vec![vec![Op::Lock(0, LockMode::Write), Op::Compute(20), Op::Unlock(0)]; n];
        Machine::builder(cfg)
            .workload(Box::new(Script::new(script)))
            .locks(2)
            .build()
            .unwrap()
            .run()
            .total_messages()
    };
    let wbi_growth = contend(MachineConfig::wbi(32)) as f64 / contend(MachineConfig::wbi(8)) as f64;
    let cbl_growth = contend(MachineConfig::cbl(32)) as f64 / contend(MachineConfig::cbl(8)) as f64;
    assert!(
        wbi_growth > 8.0,
        "WBI 4x nodes -> ~16x messages, got {wbi_growth:.1}"
    );
    assert!(
        cbl_growth < 6.0,
        "CBL 4x nodes -> ~4x messages, got {cbl_growth:.1}"
    );
}

/// The FFT phase workload's RESET-UPDATE keeps push traffic bounded by the
/// live reader set.
#[test]
fn reset_update_claim() {
    let n = 16;
    let run = |reset: bool| -> u64 {
        let mut p = FftParams::paper(n);
        p.reset_updates = reset;
        let mut cfg = MachineConfig::bc_cbl(n);
        cfg.geometry = Geometry::new(n, 4, p.shared_blocks());
        let wl = FftPhases::new(p);
        let locks = wl.machine_locks();
        Machine::builder(cfg)
            .workload(Box::new(wl))
            .locks(locks)
            .build()
            .unwrap()
            .run()
            .counters
            .get("msg.ric.update_push")
    };
    let live = run(true);
    let sticky = run(false);
    assert!(
        sticky > 2 * live,
        "sticky readers must inflate pushes: live {live}, sticky {sticky}"
    );
}
