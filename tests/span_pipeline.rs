//! End-to-end checks of the transaction-level span tracer:
//!
//! * arming span stitching is observation-only — the armed report is
//!   byte-identical (via `Debug`) to an unarmed run on every paper
//!   workload × configuration;
//! * every stitched transaction's segment breakdown sums *exactly* to
//!   its end-to-end latency, and every machine-produced trace stitches
//!   cleanly (no orphans, no dangling wire links);
//! * live `SpanSink` and offline `SpanSet::from_jsonl` over the same
//!   trace produce byte-identical `ssmp-span-v1` JSON;
//! * span-armed runs are byte-deterministic across repeated seeded runs.

use ssmp::engine::trace::MemorySink;
use ssmp::engine::{TraceFilter, Tracer};
use ssmp::machine::{Machine, MachineConfig, Report, Workload};
use ssmp::span::SpanSet;
use ssmp::workload::{
    FftParams, FftPhases, Grain, Hotspot, HotspotParams, LinearSolver, SolverParams, SorParams,
    SyncModel, SyncParams, WorkQueue, WorkQueueParams,
};

fn paper_workloads(nodes: usize) -> Vec<(&'static str, Box<dyn Workload>, usize)> {
    let wq = WorkQueue::new(WorkQueueParams::paper(nodes, Grain::Fine, 3 * nodes));
    let wq_locks = wq.machine_locks();
    let sync = SyncModel::new(SyncParams::paper(nodes, 40, 2));
    let sync_locks = sync.machine_locks();
    let solver = LinearSolver::new(SolverParams::paper(
        nodes,
        ssmp::workload::Allocation::Packed,
        3,
    ));
    let solver_locks = solver.machine_locks();
    let fft = FftPhases::new(FftParams::paper(nodes));
    let fft_locks = fft.machine_locks();
    let hot = Hotspot::new(HotspotParams::hot_locks(nodes, 0.6, 60));
    let hot_locks = hot.machine_locks();
    vec![
        ("work-queue", Box::new(wq) as Box<dyn Workload>, wq_locks),
        ("sync", Box::new(sync), sync_locks),
        ("solver", Box::new(solver), solver_locks),
        ("fft", Box::new(fft), fft_locks),
        ("hotspot", Box::new(hot), hot_locks),
    ]
}

fn fit_geometry(cfg: &mut MachineConfig, name: &str, nodes: usize) {
    let blocks = match name {
        "solver" => {
            SolverParams::paper(nodes, ssmp::workload::Allocation::Packed, 3).shared_blocks()
        }
        "fft" => FftParams::paper(nodes).shared_blocks(),
        _ => cfg.geometry.shared_blocks,
    };
    cfg.geometry =
        ssmp::core::addr::Geometry::new(nodes, 4, blocks.max(cfg.geometry.shared_blocks));
}

/// Runs `wl` span-armed with a memory sink attached; returns the report
/// (carrying the live span set) and the captured event stream.
fn spanned_run(
    cfg: MachineConfig,
    wl: Box<dyn Workload>,
    locks: usize,
) -> (Report, Vec<ssmp::engine::TraceEvent>) {
    let (sink, events) = MemorySink::new();
    let mut tracer = Tracer::new(TraceFilter::all());
    tracer.add_sink(sink);
    let r = Machine::builder(cfg)
        .workload(wl)
        .locks(locks)
        .tracer(tracer)
        .spans(true)
        .build()
        .unwrap()
        .run();
    let evs = events.borrow().clone();
    (r, evs)
}

fn jsonl_of(events: &[ssmp::engine::TraceEvent]) -> String {
    let mut s = String::new();
    for e in events {
        s.push_str(&e.to_jsonl());
        s.push('\n');
    }
    s
}

#[test]
fn span_armed_report_is_byte_identical_to_unarmed() {
    for cfg in [
        MachineConfig::wbi(4),
        MachineConfig::wbi_backoff(4),
        MachineConfig::cbl(4),
        MachineConfig::sc_cbl(4),
        MachineConfig::bc_cbl(4),
    ] {
        for (name, _, _) in paper_workloads(4) {
            let run = |armed: bool| {
                let (_, wl, locks) = paper_workloads(4)
                    .into_iter()
                    .find(|(n, _, _)| *n == name)
                    .unwrap();
                let mut cfg = cfg.clone();
                fit_geometry(&mut cfg, name, 4);
                let mut r = Machine::builder(cfg)
                    .workload(wl)
                    .locks(locks)
                    .spans(armed)
                    .build()
                    .unwrap()
                    .run();
                assert_eq!(r.spans.is_some(), armed, "{name}: spans arming mismatch");
                // the span set is the only allowed difference
                r.spans = None;
                format!("{r:?}")
            };
            assert_eq!(
                run(true),
                run(false),
                "{name}: arming spans perturbed the simulation"
            );
        }
    }
}

#[test]
fn segments_sum_exactly_to_e2e_and_stitch_is_clean() {
    for cfg in [
        MachineConfig::wbi(4),
        MachineConfig::cbl(4),
        MachineConfig::bc_cbl(4),
    ] {
        for (name, wl, locks) in paper_workloads(4) {
            let mut cfg = cfg.clone();
            fit_geometry(&mut cfg, name, 4);
            let (r, _) = spanned_run(cfg, wl, locks);
            assert!(r.deadlock.is_none(), "{name} deadlocked");
            let spans = r.spans.as_ref().unwrap();
            assert!(!spans.closed.is_empty(), "{name}: no spans stitched");
            for sp in spans.closed.values() {
                let sum: u64 = sp.segments.values().sum();
                assert_eq!(
                    sum, sp.dur,
                    "{name} txn {} ({} @ node {}): segment sum {} != e2e {}",
                    sp.txn, sp.detail, sp.node, sum, sp.dur
                );
            }
            // undelivered wires are legitimate at end of run (in-flight
            // fan-out when the last node retires), so they are outside
            // `clean()`; everything else must be spotless
            let h = spans.health();
            assert_eq!(h.orphan_ends, 0, "{name}: orphan ends");
            assert_eq!(h.dangling_links, 0, "{name}: dangling links");
            assert_eq!(h.unmatched_delivers, 0, "{name}: unmatched delivers");
            assert!(h.clean(), "{name}: stitch degraded: {h:?}");
            assert!(h.links > 0, "{name}: no wire ownership links");
        }
    }
}

#[test]
fn live_sink_equals_offline_spans_byte_for_byte() {
    for cfg in [
        MachineConfig::wbi(4),
        MachineConfig::cbl(4),
        MachineConfig::bc_cbl(4),
    ] {
        for (name, wl, locks) in paper_workloads(4) {
            let mut cfg = cfg.clone();
            fit_geometry(&mut cfg, name, 4);
            let (r, events) = spanned_run(cfg, wl, locks);
            let live = r.spans.as_ref().expect("span-armed run carries spans");
            let offline = SpanSet::from_jsonl(std::io::Cursor::new(jsonl_of(&events))).unwrap();
            assert_eq!(
                live.to_json().render(),
                offline.to_json().render(),
                "live/offline divergence on {name}"
            );
            assert_eq!(live, &offline, "{name}: structural divergence");
        }
    }
}

#[test]
fn spanned_runs_are_byte_deterministic() {
    let run = || {
        let mut cfg = MachineConfig::bc_cbl(4);
        fit_geometry(&mut cfg, "solver", 4);
        let wl = LinearSolver::new(SolverParams::paper(
            4,
            ssmp::workload::Allocation::Packed,
            3,
        ));
        let locks = wl.machine_locks();
        let (r, _) = spanned_run(cfg, Box::new(wl), locks);
        r.spans.unwrap().to_json().render()
    };
    assert_eq!(run(), run(), "repeated seeded runs must render identically");
}

#[test]
fn critical_path_is_causally_ordered_and_spans_the_run() {
    let wl = ssmp::workload::Sor::new(SorParams::new(4, 4));
    let locks = wl.machine_locks();
    let mut cfg = MachineConfig::bc_cbl(4);
    cfg.geometry = ssmp::core::addr::Geometry::new(4, 4, 4usize.max(cfg.geometry.shared_blocks));
    let (r, _) = spanned_run(cfg, Box::new(wl), locks);
    let spans = r.spans.as_ref().unwrap();
    let chain = spans.critical_path();
    assert!(!chain.is_empty(), "no critical path extracted");
    // each hop is reached from its predecessor via the recorded parent
    // backpointer (program-order or causal wire edge)
    for w in chain.windows(2) {
        assert_eq!(
            w[1].path_parent,
            Some(w[0].txn),
            "critical path hop {} -> {} has no dependency edge",
            w[0].txn,
            w[1].txn
        );
        assert!(
            w[0].dist < w[1].dist,
            "critical path distance not increasing at txn {}",
            w[1].txn
        );
    }
    // the chain terminates at the globally maximal chain distance, and
    // that distance is exactly the chain's summed span durations
    let tail = chain.last().unwrap();
    let max_dist = spans.closed.values().map(|s| s.dist).max().unwrap();
    assert_eq!(
        tail.dist, max_dist,
        "critical path is not the longest chain"
    );
    let summed: u64 = chain.iter().map(|s| s.dur).sum();
    assert_eq!(
        summed, tail.dist,
        "chain durations do not sum to the terminal distance"
    );
}
